/**
 * @file
 * Detail tests of the out-of-order core: window wraparound, resource
 * limits, unpipelined dividers, I-cache stalls and determinism.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace vsv
{
namespace
{

/** Minimal harness (no warmup; tests opt in explicitly). */
struct Rig
{
    explicit Rig(const WorkloadProfile &profile, CoreConfig cc = {})
        : power(),
          mem(HierarchyConfig{}, power),
          predictor(),
          workload(profile),
          core(cc, workload, mem, predictor, power)
    {
    }

    void
    warm(std::uint64_t n)
    {
        mem.setWarmupMode(true);
        Tick t = 0;
        for (Addr off = 0; off < workload.profile().hotFootprint;
             off += 32) {
            mem.warmupDataAccess(WorkloadRegions::hot + off, false, t++);
        }
        for (Addr off = 0; off < workload.profile().warmFootprint;
             off += 32) {
            mem.warmupDataAccess(WorkloadRegions::warm + off, false,
                                 t++);
        }
        for (Addr off = 0; off < workload.profile().codeFootprint;
             off += 32) {
            mem.warmupInstAccess(WorkloadRegions::code + off, t++);
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            const MicroOp op = workload.next();
            mem.warmupInstAccess(op.pc, t);
            if (isMemOp(op.cls)) {
                mem.warmupDataAccess(op.addr, op.cls == OpClass::Store,
                                     t);
            } else if (op.cls == OpClass::Branch) {
                predictor.resolve(op, predictor.predict(op));
            }
            ++t;
        }
        mem.setWarmupMode(false);
    }

    Tick
    run(std::uint64_t insts, Tick limit = 20'000'000)
    {
        Tick now = 0;
        while (core.committedInstructions() < insts && now < limit) {
            mem.service(now);
            core.cycle(now);
            ++now;
        }
        EXPECT_GE(core.committedInstructions(), insts);
        return now;
    }

    PowerModel power;
    MemoryHierarchy mem;
    BranchPredictor predictor;
    WorkloadGenerator workload;
    Core core;
};

WorkloadProfile
computeOnly(double mean_dep = 8.0)
{
    WorkloadProfile p;
    p.name = "compute";
    p.seed = 11;
    p.loadFrac = p.storeFrac = p.branchFrac = 0.0;
    p.meanDepDist = mean_dep;
    p.loadConsumerProb = 0.0;
    return p;
}

TEST(CoreDetailTest, WindowWrapsManyTimesWithoutCorruption)
{
    // 50K instructions through a 128-entry RUU = ~400 wraps of the
    // sequence-number ring.
    Rig rig(computeOnly());
    rig.warm(8000);
    rig.run(50000);
    EXPECT_GE(rig.core.committedInstructions(), 50000u);
}

TEST(CoreDetailTest, TinyWindowStillMakesProgress)
{
    CoreConfig config;
    config.ruuSize = 4;
    config.lsqSize = 2;
    config.fetchQueueSize = 2;
    WorkloadProfile p = computeOnly(4.0);
    p.loadFrac = 0.2;
    Rig rig(p, config);
    rig.warm(5000);
    const Tick ticks = rig.run(5000);
    EXPECT_LT(ticks, 1'000'000u);
}

TEST(CoreDetailTest, CommitWidthBoundsThroughput)
{
    CoreConfig config;
    config.commitWidth = 2;
    Rig rig(computeOnly(16.0), config);
    rig.warm(8000);
    const Tick ticks = rig.run(20000);
    const double ipc = 20000.0 / static_cast<double>(ticks);
    EXPECT_LE(ipc, 2.05);
    EXPECT_GT(ipc, 1.5);  // and it should be commit-, not issue-bound
}

TEST(CoreDetailTest, UnpipelinedDividersThrottleDivChains)
{
    // All-integer-divide workload: 2 unpipelined 20-cycle units bound
    // throughput at 2/20 = 0.1 IPC even with no dependences.
    WorkloadProfile p = computeOnly(64.0);
    p.intDivFrac = 1.0;
    p.secondSrcProb = 0.0;
    Rig rig(p);
    rig.warm(2000);
    const Tick ticks = rig.run(2000);
    const double ipc = 2000.0 / static_cast<double>(ticks);
    EXPECT_LT(ipc, 0.115);
    EXPECT_GT(ipc, 0.085);
}

TEST(CoreDetailTest, IntAluPoolBoundsWidth)
{
    // With only 2 integer ALUs, even a fully parallel int stream
    // cannot exceed IPC 2.
    CoreConfig config;
    config.fuPools.count[static_cast<std::size_t>(FuPool::IntAlu)] = 2;
    WorkloadProfile p = computeOnly(32.0);
    p.intMulFrac = 0.0;   // multiplies would ride the mul/div pool
    p.intDivFrac = 0.0;
    Rig rig(p, config);
    rig.warm(5000);
    const Tick ticks = rig.run(10000);
    const double ipc = 10000.0 / static_cast<double>(ticks);
    EXPECT_LE(ipc, 2.02);
    EXPECT_GT(ipc, 1.6);
}

TEST(CoreDetailTest, ColdICacheStallsFetch)
{
    // A giant code footprint with no warmup: I-cache misses dominate.
    WorkloadProfile cold = computeOnly(16.0);
    cold.codeFootprint = 512 * 1024;
    Rig cold_rig(cold);
    const Tick cold_ticks = cold_rig.run(5000);

    WorkloadProfile warmp = cold;
    Rig warm_rig(warmp);
    warm_rig.warm(200);  // pre-touches the whole code region
    const Tick warm_ticks = warm_rig.run(5000);

    EXPECT_GT(static_cast<double>(cold_ticks),
              3.0 * static_cast<double>(warm_ticks));
}

TEST(CoreDetailTest, CoreIsDeterministic)
{
    auto run_once = [] {
        WorkloadProfile p = computeOnly(6.0);
        p.loadFrac = 0.25;
        p.branchFrac = 0.1;
        Rig rig(p);
        rig.warm(5000);
        return rig.run(15000);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CoreDetailTest, LsqBoundsOutstandingMemOps)
{
    // A load-only stream against a 4-entry LSQ cannot hold more than
    // 4 mem ops in flight; it still completes, just slowly.
    CoreConfig config;
    config.lsqSize = 4;
    WorkloadProfile p;
    p.name = "loady";
    p.seed = 12;
    p.loadFrac = 0.8;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldFrac = 0.2;
    p.coldPattern = ColdPattern::Random;
    Rig rig(p, config);
    rig.warm(5000);
    const Tick small_lsq = rig.run(3000);

    Rig big(p);
    big.warm(5000);
    const Tick big_lsq = big.run(3000);
    EXPECT_GT(static_cast<double>(small_lsq),
              1.2 * static_cast<double>(big_lsq));
}

TEST(CoreDetailTest, IssueRateDistributionIsRecorded)
{
    Rig rig(computeOnly(10.0));
    rig.warm(5000);
    rig.run(10000);
    StatRegistry registry;
    rig.core.regStats(registry, "cpu");
    // The distribution exists and total issued matches committed
    // within the in-flight tail.
    const double issued = registry.scalarValue("cpu.issued");
    const double committed = registry.scalarValue("cpu.committed");
    EXPECT_GE(issued, committed);
    EXPECT_LE(issued, committed + 200.0);
}

} // namespace
} // namespace vsv
