/**
 * @file
 * Tier-1 lockstep smoke gate (the `lockstep_smoke` ctest): a tiny
 * power-characterization grid must actually form a batch (>= 2
 * replicas behind one front-end) and produce stats identical to
 * serial execution. Deep equivalence checks live in
 * lockstep_equivalence_test.cc; this binary is the fast always-on
 * canary that the batching path stays wired up.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "harness/lockstep.hh"
#include "harness/sweep.hh"

namespace vsv
{
namespace
{

TEST(LockstepSmoke, TinyGridBatchesAndMatchesSerial)
{
    SimulationOptions base = makeOptions("mcf", false, 8000, 3000);
    base.vsv = fsmVsvConfig();
    SimulationOptions leaky = base;
    leaky.power.leakageFraction = 0.05;
    SimulationOptions gated = base;
    gated.power.gatingEfficiency = 0.80;
    const std::vector<SweepJob> jobs{
        {"mcf/default", base},
        {"mcf/leak-0.05", leaky},
        {"mcf/ge-0.80", gated},
    };

    SweepRunner serial(1);
    const std::vector<SweepOutcome> want = serial.run(jobs);

    SweepRunner lockstep(1);
    lockstep.enableLockstep(16);
    const std::vector<SweepOutcome> got = lockstep.run(jobs);

    const LockstepStats &stats = lockstep.lockstepStats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_GE(stats.largestBatch, 2u);
    EXPECT_EQ(stats.batchedRuns, jobs.size());
    EXPECT_EQ(stats.fallbacks, 0u);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].status, SweepStatus::Ok)
            << got[i].id << ": " << got[i].error;
        EXPECT_EQ(got[i].scalars, want[i].scalars) << got[i].id;
        EXPECT_EQ(got[i].statsJson, want[i].statsJson) << got[i].id;
    }
}

} // namespace
} // namespace vsv
