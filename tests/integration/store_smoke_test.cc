/**
 * @file
 * Tier-1 result-store smoke gate (the `store_smoke` ctest): sweeping
 * the same grid twice through one --store-dir must simulate every run
 * exactly once. The warm pass serves all runs from the store (zero
 * simulations, witnessed by an idle snapshot cache), its outcomes and
 * its manifest's runs array are byte-identical to the cold pass -
 * including the recorded host-dependent throughput block - and the
 * manifest differs only in the accounting spans (wall clock, cache/
 * lockstep/store counters). The deep checks (codec, quarantine,
 * multi-process safety, daemon) live in tests/store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/minijson.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace vsv
{
namespace
{

std::string
freshDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

/**
 * The manifest's accounting span - wall clock through the cache/
 * lockstep/store counter blocks - is expected to differ between a
 * cold and a warm sweep; everything outside it must not. The span is
 * delimited by stable keys writeSweepJson always emits in order.
 */
std::string
stripAccountingSpan(const std::string &document)
{
    const std::size_t from = document.find(",\"wallSeconds\":");
    const std::size_t to = document.find(",\"config\":");
    if (from == std::string::npos || to == std::string::npos ||
        to <= from)
        return document;
    return document.substr(0, from) + document.substr(to);
}

TEST(StoreSmoke, WarmSweepIsServedEntirelyFromTheStore)
{
    const std::string storeDir = freshDir("vsv_store_smoke");
    const std::string coldJson =
        testing::TempDir() + "vsv_store_smoke_cold.json";
    const std::string warmJson =
        testing::TempDir() + "vsv_store_smoke_warm.json";

    SimulationOptions base = makeOptions("mcf", false, 8000, 3000);
    SimulationOptions fsm = base;
    fsm.vsv = fsmVsvConfig();
    SimulationOptions no_fsm = base;
    no_fsm.vsv = noFsmVsvConfig();
    const std::vector<SweepJob> jobs{
        {"mcf/base", base},
        {"mcf/no-fsm", no_fsm},
        {"mcf/fsm", fsm},
    };

    ExperimentArgs args;
    args.jobs = 2;
    args.storeDir = storeDir;

    args.jsonPath = coldJson;
    const std::vector<SweepOutcome> cold =
        runSweep(args, "store_smoke", jobs);
    args.jsonPath = warmJson;
    const std::vector<SweepOutcome> warm =
        runSweep(args, "store_smoke", jobs);

    // The warm outcomes replay the cold bytes, run for run.
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        ASSERT_EQ(warm[i].status, SweepStatus::Ok)
            << warm[i].id << ": " << warm[i].error;
        EXPECT_EQ(warm[i].id, cold[i].id);
        EXPECT_EQ(warm[i].fingerprint, cold[i].fingerprint);
        EXPECT_EQ(warm[i].attempts, cold[i].attempts) << warm[i].id;
        EXPECT_EQ(warm[i].scalars, cold[i].scalars) << warm[i].id;
        EXPECT_EQ(warm[i].statsJson, cold[i].statsJson) << warm[i].id;
        EXPECT_EQ(warm[i].statsText, cold[i].statsText) << warm[i].id;
    }

    const std::string coldDoc = readFile(coldJson);
    const std::string warmDoc = readFile(warmJson);
    ASSERT_FALSE(coldDoc.empty());
    ASSERT_FALSE(warmDoc.empty());

    // The runs array - recorded results, stats, and even the original
    // pass's throughput block - is byte-identical.
    const std::size_t coldRuns = coldDoc.find(",\"runs\":[");
    const std::size_t warmRuns = warmDoc.find(",\"runs\":[");
    ASSERT_NE(coldRuns, std::string::npos);
    ASSERT_NE(warmRuns, std::string::npos);
    EXPECT_EQ(warmDoc.substr(warmRuns), coldDoc.substr(coldRuns));

    // Outside the accounting span the manifests match too.
    EXPECT_EQ(stripAccountingSpan(warmDoc.substr(0, warmRuns)),
              stripAccountingSpan(coldDoc.substr(0, coldRuns)));

    // The store block proves the split: every cold run was simulated
    // and recorded, every warm run was a hit - and the warm pass's
    // idle snapshot cache proves nothing warmed up, i.e. zero
    // simulations happened at all.
    const minijson::Value coldTop = minijson::parse(coldDoc);
    const minijson::Value warmTop = minijson::parse(warmDoc);
    const minijson::Value &coldStore =
        coldTop.at("manifest").at("store");
    EXPECT_EQ(coldStore.at("hits").num(), 0);
    EXPECT_EQ(coldStore.at("misses").num(), 3);
    EXPECT_EQ(coldStore.at("inserts").num(), 3);
    const minijson::Value &warmStore =
        warmTop.at("manifest").at("store");
    EXPECT_EQ(warmStore.at("hits").num(), 3);
    EXPECT_EQ(warmStore.at("misses").num(), 0);
    EXPECT_EQ(warmStore.at("inserts").num(), 0);
    const minijson::Value &warmCache =
        warmTop.at("manifest").at("snapshotCache");
    EXPECT_EQ(warmCache.at("hits").num(), 0);
    EXPECT_EQ(warmCache.at("misses").num(), 0);

    std::filesystem::remove_all(storeDir);
    std::filesystem::remove(coldJson);
    std::filesystem::remove(warmJson);
}

} // namespace
} // namespace vsv
