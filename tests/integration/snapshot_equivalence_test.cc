/**
 * @file
 * Proof that the warmup snapshot cache is an optimization, not a
 * model change: every statistic the simulator exports must be
 * bit-identical whether a run warmed up from scratch or restored a
 * cached post-warmup snapshot, across the full Figure 4 grid (all
 * SPEC2K benchmarks x {baseline, VSV without FSMs, VSV with FSMs}),
 * under a multi-threaded sweep - and the cache counters must prove
 * exactly one warmup happened per benchmark.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/warmup_cache.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace vsv
{
namespace
{

/** The Figure 4 job list (3 configs per benchmark) at test scale. */
std::vector<SweepJob>
figure4Grid()
{
    std::vector<SweepJob> jobs;
    for (const auto &name : spec2kBenchmarks()) {
        SimulationOptions base = makeOptions(name, false, 20000, 5000);
        jobs.push_back({name + "/base", base});

        SimulationOptions no_fsm = base;
        no_fsm.vsv = noFsmVsvConfig();
        jobs.push_back({name + "/no-fsm", no_fsm});

        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/fsm", with_fsm});
    }
    return jobs;
}

void
expectIdentical(const std::vector<SweepOutcome> &fresh,
                const std::vector<SweepOutcome> &cached)
{
    ASSERT_EQ(fresh.size(), cached.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        const SweepOutcome &a = fresh[i];
        const SweepOutcome &b = cached[i];
        ASSERT_EQ(a.id, b.id);

        // Every registered scalar, bit for bit.
        EXPECT_EQ(a.scalars, b.scalars) << a.id;
        // The full stats dump, distributions included.
        EXPECT_EQ(a.statsJson, b.statsJson) << a.id;

        // Result fields, minus the host-dependent throughput block.
        EXPECT_EQ(a.result.instructions, b.result.instructions) << a.id;
        EXPECT_EQ(a.result.ticks, b.result.ticks) << a.id;
        EXPECT_EQ(a.result.pipelineCycles, b.result.pipelineCycles)
            << a.id;
        EXPECT_EQ(a.result.downTransitions, b.result.downTransitions)
            << a.id;
        EXPECT_EQ(a.result.upTransitions, b.result.upTransitions)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.ipc, b.result.ipc) << a.id;
        EXPECT_DOUBLE_EQ(a.result.mr, b.result.mr) << a.id;
        EXPECT_DOUBLE_EQ(a.result.energyPj, b.result.energyPj) << a.id;
        EXPECT_DOUBLE_EQ(a.result.avgPowerW, b.result.avgPowerW)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.lowModeFraction,
                         b.result.lowModeFraction)
            << a.id;
    }
}

TEST(SnapshotEquivalenceTest, Figure4GridIsBitIdentical)
{
    const std::vector<SweepJob> jobs = figure4Grid();

    // --jobs 8 on both sides: the cached sweep exercises the
    // first-worker-computes path, with workers blocking on snapshots
    // still being produced.
    SweepRunner fresh_runner(8);
    const std::vector<SweepOutcome> fresh = fresh_runner.run(jobs);

    SweepRunner cached_runner(8);
    WarmupSnapshotCache cache;
    cached_runner.enableWarmupSnapshots(cache);
    const std::vector<SweepOutcome> cached = cached_runner.run(jobs);

    expectIdentical(fresh, cached);

    // Exactly one warmup per benchmark; the other two configs of each
    // triple restored from it.
    const std::size_t benchmarks = spec2kBenchmarks().size();
    const SnapshotCacheStats stats = cache.stats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.misses, benchmarks);
    EXPECT_EQ(stats.hits, 2 * benchmarks);
    EXPECT_EQ(stats.diskHits, 0u);
    EXPECT_EQ(stats.failures, 0u);
}

TEST(SnapshotEquivalenceTest, TimekeepingWarmupIsBitIdentical)
{
    // The TK prefetcher's trained state (correlation history, pending
    // prefetches in flight at the warmup boundary) is the largest and
    // most fragile part of a snapshot; prove the restore is exact on
    // the long trained warmup the cache exists to amortize.
    std::vector<SweepJob> jobs;
    for (const std::string name : {"mcf", "art"}) {
        SimulationOptions base = makeOptions(name, true, 20000, 5000);
        jobs.push_back({name + "/tk-base", base});
        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/tk-fsm", with_fsm});
    }

    SweepRunner fresh_runner(4);
    const std::vector<SweepOutcome> fresh = fresh_runner.run(jobs);

    SweepRunner cached_runner(4);
    WarmupSnapshotCache cache;
    cached_runner.enableWarmupSnapshots(cache);
    const std::vector<SweepOutcome> cached = cached_runner.run(jobs);

    expectIdentical(fresh, cached);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().failures, 0u);
}

TEST(SnapshotEquivalenceTest, TraceReplayWarmupIsBitIdentical)
{
    // Trace-driven runs snapshot a replay cursor instead of generator
    // RNG state; the restored run must resume mid-file exactly.
    const std::string path =
        testing::TempDir() + "vsv_snapshot_equiv.trace";
    {
        WorkloadGenerator gen(spec2kProfile("mcf"));
        TraceWriter writer(path);
        for (int i = 0; i < 12000; ++i)
            writer.append(gen.next());
    }

    SimulationOptions base = makeOptions("mcf", false, 6000, 4000);
    base.tracePath = path;
    base.traceLoop = true;
    std::vector<SweepJob> jobs;
    jobs.push_back({"trace/base", base});
    SimulationOptions with_fsm = base;
    with_fsm.vsv = fsmVsvConfig();
    jobs.push_back({"trace/fsm", with_fsm});

    SweepRunner fresh_runner(2);
    const std::vector<SweepOutcome> fresh = fresh_runner.run(jobs);

    SweepRunner cached_runner(2);
    WarmupSnapshotCache cache;
    cached_runner.enableWarmupSnapshots(cache);
    const std::vector<SweepOutcome> cached = cached_runner.run(jobs);

    expectIdentical(fresh, cached);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    std::remove(path.c_str());
}

} // namespace
} // namespace vsv
