/**
 * @file
 * Proof that the idle-tick fast-forward is an optimization, not a
 * model change: every statistic the simulator exports must be
 * bit-identical with fast-forward on and off, across the full
 * Figure 4 grid (all SPEC2K benchmarks x {baseline, VSV without
 * FSMs, VSV with FSMs}), including under a multi-threaded sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "workload/workload.hh"

namespace vsv
{
namespace
{

/** The Figure 4 job list (3 configs per benchmark) at test scale. */
std::vector<SweepJob>
figure4Grid(bool fast_forward)
{
    std::vector<SweepJob> jobs;
    for (const auto &name : spec2kBenchmarks()) {
        SimulationOptions base = makeOptions(name, false, 20000, 5000);
        base.fastForward = fast_forward;
        jobs.push_back({name + "/base", base});

        SimulationOptions no_fsm = base;
        no_fsm.vsv = noFsmVsvConfig();
        jobs.push_back({name + "/no-fsm", no_fsm});

        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/fsm", with_fsm});
    }
    return jobs;
}

TEST(FastForwardTest, Figure4GridIsBitIdentical)
{
    // --jobs 8 on both sides: the comparison also re-checks that the
    // threaded sweep returns outcomes in submission order.
    SweepRunner runner(8);
    const std::vector<SweepOutcome> on = runner.run(figure4Grid(true));
    const std::vector<SweepOutcome> off = runner.run(figure4Grid(false));
    ASSERT_EQ(on.size(), off.size());

    for (std::size_t i = 0; i < on.size(); ++i) {
        const SweepOutcome &a = on[i];
        const SweepOutcome &b = off[i];
        ASSERT_EQ(a.id, b.id);

        // Every registered scalar, bit for bit.
        EXPECT_EQ(a.scalars, b.scalars) << a.id;
        // The full stats dump, distributions included.
        EXPECT_EQ(a.statsJson, b.statsJson) << a.id;

        // Result fields, minus the host-dependent throughput block.
        EXPECT_EQ(a.result.instructions, b.result.instructions) << a.id;
        EXPECT_EQ(a.result.ticks, b.result.ticks) << a.id;
        EXPECT_EQ(a.result.pipelineCycles, b.result.pipelineCycles)
            << a.id;
        EXPECT_EQ(a.result.downTransitions, b.result.downTransitions)
            << a.id;
        EXPECT_EQ(a.result.upTransitions, b.result.upTransitions)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.ipc, b.result.ipc) << a.id;
        EXPECT_DOUBLE_EQ(a.result.mr, b.result.mr) << a.id;
        EXPECT_DOUBLE_EQ(a.result.energyPj, b.result.energyPj) << a.id;
        EXPECT_DOUBLE_EQ(a.result.avgPowerW, b.result.avgPowerW)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.lowModeFraction,
                         b.result.lowModeFraction)
            << a.id;

        EXPECT_EQ(b.result.fastForwardedTicks, 0u) << a.id;
    }
}

TEST(FastForwardTest, EngagesOnStallHeavyWorkload)
{
    // mcf spends most of its time waiting on L2 misses; the
    // fast-forward must actually skip ticks there or the optimization
    // is dead code.
    SimulationOptions options = makeOptions("mcf", false, 30000, 5000);
    options.fastForward = true;
    const SweepOutcome out = SweepRunner::runOne({"mcf", options});
    EXPECT_GT(out.result.fastForwardedTicks, 0u);
    EXPECT_GT(out.result.ffTickFraction, 0.0);
    EXPECT_LE(out.result.ffTickFraction, 1.0);
}

TEST(FastForwardTest, EngagesInLowPowerSteadyState)
{
    // With VSV enabled, steady Low mode (half-speed clock) is where
    // stall time concentrates; the skipper must handle the divided
    // pipeline-edge pattern there.
    SimulationOptions options = makeOptions("mcf", false, 30000, 5000);
    options.vsv = fsmVsvConfig();
    options.fastForward = true;
    const SweepOutcome out = SweepRunner::runOne({"mcf-fsm", options});
    EXPECT_GT(out.result.downTransitions, 0u);
    EXPECT_GT(out.result.fastForwardedTicks, 0u);
}

TEST(FastForwardTest, DisabledModeReportsNoSkippedTicks)
{
    SimulationOptions options = makeOptions("mcf", false, 20000, 5000);
    options.fastForward = false;
    const SweepOutcome out = SweepRunner::runOne({"mcf-off", options});
    EXPECT_EQ(out.result.fastForwardedTicks, 0u);
    EXPECT_DOUBLE_EQ(out.result.ffTickFraction, 0.0);
}

TEST(FastForwardTest, TimekeepingRunsAreBitIdentical)
{
    // The TK prefetcher's periodic history sweep bounds the skip
    // horizon; make sure that interaction is exact too.
    SimulationOptions on = makeOptions("art", true, 20000, 0);
    on.fastForward = true;
    SimulationOptions off = on;
    off.fastForward = false;
    const SweepOutcome a = SweepRunner::runOne({"art-tk", on});
    const SweepOutcome b = SweepRunner::runOne({"art-tk", off});
    EXPECT_EQ(a.scalars, b.scalars);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.result.ticks, b.result.ticks);
    EXPECT_DOUBLE_EQ(a.result.energyPj, b.result.energyPj);
}

} // namespace
} // namespace vsv
