/**
 * @file
 * Proof that lockstep batch execution is an optimization, not a model
 * change: every statistic the simulator exports must be bit-identical
 * between a lockstep-enabled sweep and a plain serial sweep — over the
 * full Figure 4 grid (whose base/no-fsm/fsm axis is structurally
 * divergent, so the planner must route every run serially) and over a
 * power-characterization grid that genuinely batches (one front-end
 * feeding many PowerModel/VsvController replicas, including an
 * equal-rampTicks rail-voltage variant).
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hh"
#include "harness/lockstep.hh"
#include "harness/sweep.hh"
#include "harness/warmup_cache.hh"
#include "workload/workload.hh"

namespace vsv
{
namespace
{

/** The Figure 4 job list (3 configs per benchmark) at test scale. */
std::vector<SweepJob>
figure4Grid()
{
    std::vector<SweepJob> jobs;
    for (const auto &name : spec2kBenchmarks()) {
        const SimulationOptions base =
            makeOptions(name, false, 20000, 5000);
        jobs.push_back({name + "/base", base});

        SimulationOptions no_fsm = base;
        no_fsm.vsv = noFsmVsvConfig();
        jobs.push_back({name + "/no-fsm", no_fsm});

        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/fsm", with_fsm});
    }
    return jobs;
}

/**
 * A power-characterization grid: one structure (mcf + FSM) swept over
 * accounting-only knobs, so every job shares a structural fingerprint
 * and the planner forms one real batch. The vddl-1.32 entry pins the
 * subtlest eligibility rule: different rail voltages with the *same*
 * derived ramp duration (0.48 V at 0.04 V/tick = 0.6 V at 0.05 V/tick
 * = 12 ticks) are timing-identical and may share the front-end.
 */
std::vector<SweepJob>
powerCharacterizationGrid(const std::string &bench, bool timekeeping)
{
    SimulationOptions base = makeOptions(bench, timekeeping, 20000,
                                         timekeeping ? 0 : 5000);
    base.vsv = fsmVsvConfig();

    std::vector<SweepJob> jobs;
    jobs.push_back({bench + "/default", base});

    SimulationOptions gating = base;
    gating.power.gating = GatingStyle::Simple;
    jobs.push_back({bench + "/gating-simple", gating});

    SimulationOptions efficiency = base;
    efficiency.power.gatingEfficiency = 0.80;
    jobs.push_back({bench + "/ge-0.80", efficiency});

    SimulationOptions idle = base;
    idle.power.idleFraction = 0.15;
    jobs.push_back({bench + "/idle-0.15", idle});

    SimulationOptions ramp = base;
    ramp.power.rampEnergyPj = 33000.0;
    jobs.push_back({bench + "/ramp-33k", ramp});

    SimulationOptions leaky = base;
    leaky.power.leakageFraction = 0.05;
    jobs.push_back({bench + "/leak-0.05", leaky});

    SimulationOptions rail = base;
    rail.vsv.vddLow = 1.32;
    rail.vsv.slewVoltsPerTick = 0.04;
    rail.power.vddLow = 1.32;
    jobs.push_back({bench + "/vddl-1.32", rail});

    return jobs;
}

/** Baseline (VSV off) accounting variants must batch too: replicas
 *  whose controller never leaves VDDH still step in lockstep. */
std::vector<SweepJob>
baselineGrid()
{
    const SimulationOptions base = makeOptions("ammp", false, 20000,
                                               5000);
    std::vector<SweepJob> jobs;
    jobs.push_back({"ammp/base-default", base});
    SimulationOptions idle = base;
    idle.power.idleFraction = 0.2;
    jobs.push_back({"ammp/base-idle-0.2", idle});
    SimulationOptions leaky = base;
    leaky.power.leakageFraction = 0.1;
    jobs.push_back({"ammp/base-leak-0.1", leaky});
    return jobs;
}

void
expectBitIdentical(const std::vector<SweepOutcome> &got,
                   const std::vector<SweepOutcome> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        const SweepOutcome &a = got[i];
        const SweepOutcome &b = want[i];
        ASSERT_EQ(a.id, b.id);
        EXPECT_EQ(a.status, SweepStatus::Ok) << a.id << ": " << a.error;

        // Every registered scalar, bit for bit.
        EXPECT_EQ(a.scalars, b.scalars) << a.id;
        // The full stats dump, distributions included.
        EXPECT_EQ(a.statsJson, b.statsJson) << a.id;

        // Result fields, minus the host-dependent throughput block.
        EXPECT_EQ(a.result.instructions, b.result.instructions) << a.id;
        EXPECT_EQ(a.result.ticks, b.result.ticks) << a.id;
        EXPECT_EQ(a.result.pipelineCycles, b.result.pipelineCycles)
            << a.id;
        EXPECT_EQ(a.result.downTransitions, b.result.downTransitions)
            << a.id;
        EXPECT_EQ(a.result.upTransitions, b.result.upTransitions)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.ipc, b.result.ipc) << a.id;
        EXPECT_DOUBLE_EQ(a.result.mr, b.result.mr) << a.id;
        EXPECT_DOUBLE_EQ(a.result.energyPj, b.result.energyPj) << a.id;
        EXPECT_DOUBLE_EQ(a.result.avgPowerW, b.result.avgPowerW)
            << a.id;
        EXPECT_DOUBLE_EQ(a.result.lowModeFraction,
                         b.result.lowModeFraction)
            << a.id;
    }
}

TEST(LockstepEquivalenceTest, Figure4GridIsBitIdentical)
{
    // The Figure 4 axis is structurally divergent (VSV does shift
    // cache-hit counts), so every run must be planned serial - and the
    // outcomes must still match a lockstep-free sweep exactly.
    SweepRunner serial(4);
    const std::vector<SweepOutcome> want = serial.run(figure4Grid());

    SweepRunner lockstep(4);
    lockstep.enableLockstep(16);
    const std::vector<SweepOutcome> got = lockstep.run(figure4Grid());

    const LockstepStats &stats = lockstep.lockstepStats();
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.batches, 0u);
    EXPECT_EQ(stats.batchedRuns, 0u);
    EXPECT_EQ(stats.serialRuns, got.size());
    EXPECT_TRUE(stats.ineligible.empty());

    expectBitIdentical(got, want);
}

TEST(LockstepEquivalenceTest, PowerGridBatchesAndIsBitIdentical)
{
    const std::vector<SweepJob> jobs =
        powerCharacterizationGrid("mcf", false);

    SweepRunner serial(1);
    const std::vector<SweepOutcome> want = serial.run(jobs);

    SweepRunner lockstep(1);
    lockstep.enableLockstep(16);
    const std::vector<SweepOutcome> got = lockstep.run(jobs);

    const LockstepStats &stats = lockstep.lockstepStats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batchedRuns, jobs.size());
    EXPECT_EQ(stats.largestBatch, jobs.size());
    EXPECT_EQ(stats.serialRuns, 0u);
    EXPECT_EQ(stats.fallbacks, 0u);

    expectBitIdentical(got, want);
}

TEST(LockstepEquivalenceTest, TimekeepingGridBatchesAndIsBitIdentical)
{
    // TK prefetcher runs recordAccess during warmup and bounds the
    // fast-forward horizon; both interactions must fan out exactly.
    // The serial side gets the snapshot cache (the prior fastest
    // path) so the trained multi-million-instruction TK warmup runs
    // once, not once per config.
    const std::vector<SweepJob> jobs =
        powerCharacterizationGrid("art", true);

    SweepRunner serial(1);
    WarmupSnapshotCache cache;
    serial.enableWarmupSnapshots(cache);
    const std::vector<SweepOutcome> want = serial.run(jobs);

    SweepRunner lockstep(1);
    lockstep.enableLockstep(16);
    const std::vector<SweepOutcome> got = lockstep.run(jobs);

    EXPECT_EQ(lockstep.lockstepStats().batchedRuns, jobs.size());
    EXPECT_EQ(lockstep.lockstepStats().fallbacks, 0u);
    expectBitIdentical(got, want);
}

TEST(LockstepEquivalenceTest, BaselineGridBatchesAndIsBitIdentical)
{
    const std::vector<SweepJob> jobs = baselineGrid();

    SweepRunner serial(1);
    const std::vector<SweepOutcome> want = serial.run(jobs);

    SweepRunner lockstep(1);
    lockstep.enableLockstep(16);
    const std::vector<SweepOutcome> got = lockstep.run(jobs);

    EXPECT_EQ(lockstep.lockstepStats().batchedRuns, jobs.size());
    expectBitIdentical(got, want);
}

TEST(LockstepEquivalenceTest, ReplicaCapChunksWideGrids)
{
    // 7 batchable jobs at --lockstep=3 -> batches of 3+3 and one
    // serial remainder; results must still match serial execution.
    const std::vector<SweepJob> jobs =
        powerCharacterizationGrid("mcf", false);
    ASSERT_EQ(jobs.size(), 7u);

    SweepRunner serial(1);
    const std::vector<SweepOutcome> want = serial.run(jobs);

    SweepRunner lockstep(2);
    lockstep.enableLockstep(3);
    const std::vector<SweepOutcome> got = lockstep.run(jobs);

    const LockstepStats &stats = lockstep.lockstepStats();
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.batchedRuns, 6u);
    EXPECT_EQ(stats.largestBatch, 3u);
    EXPECT_EQ(stats.serialRuns, 1u);

    expectBitIdentical(got, want);
}

} // namespace
} // namespace vsv
