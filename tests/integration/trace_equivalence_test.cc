/**
 * @file
 * Whole-stack tracing contracts (DESIGN.md §5e):
 *
 *  - a traced fast-forward run records the same event stream as a
 *    traced --no-fast-forward run, modulo the synthesized "ff"
 *    idle-span slices;
 *  - tracing never perturbs results: every registered statistic is
 *    bit-identical with tracing on or off;
 *  - the exported Chrome JSON is strictly well-formed and its mode
 *    slices agree with the controller's transition counters.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/simulator.hh"

#include "common/minijson.hh"

namespace vsv
{
namespace
{

SimulationOptions
tracedOptions(const std::string &path, bool fast_forward)
{
    SimulationOptions options = makeOptions("mcf", false, 20000, 20000);
    options.vsv = fsmVsvConfig();
    options.fastForward = fast_forward;
    options.trace.path = path;
    options.trace.intervalTicks = 5000;
    return options;
}

std::vector<TraceEvent>
eventsExceptFastForward(const TraceSink &sink)
{
    const std::uint16_t ff =
        TraceSink::categoryIndex(TraceCategory::FastForward);
    std::vector<TraceEvent> out;
    sink.visit([&](const TraceEvent &ev) {
        if (ev.cat != ff)
            out.push_back(ev);
    });
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(TraceEquivalenceTest, FastForwardRecordsTheSameStream)
{
    const std::string ff_path =
        testing::TempDir() + "vsv_trace_ff.json";
    const std::string slow_path =
        testing::TempDir() + "vsv_trace_slow.json";

    Simulator ff_sim(tracedOptions(ff_path, true));
    const SimulationResult ff_result = ff_sim.run();
    Simulator slow_sim(tracedOptions(slow_path, false));
    const SimulationResult slow_result = slow_sim.run();

    // The runs themselves must agree before the traces can.
    ASSERT_GT(ff_result.fastForwardedTicks, 0u);
    ASSERT_EQ(slow_result.fastForwardedTicks, 0u);
    ASSERT_EQ(ff_result.ticks, slow_result.ticks);
    ASSERT_EQ(ff_result.downTransitions, slow_result.downTransitions);

    ASSERT_NE(ff_sim.trace(), nullptr);
    ASSERT_NE(slow_sim.trace(), nullptr);
    const std::vector<TraceEvent> ff_events =
        eventsExceptFastForward(*ff_sim.trace());
    const std::vector<TraceEvent> slow_events =
        eventsExceptFastForward(*slow_sim.trace());

    ASSERT_EQ(ff_events.size(), slow_events.size());
    for (std::size_t i = 0; i < ff_events.size(); ++i) {
        ASSERT_EQ(ff_events[i].ts, slow_events[i].ts) << "event " << i;
        ASSERT_EQ(ff_events[i].kind, slow_events[i].kind)
            << "event " << i;
        ASSERT_EQ(ff_events[i].cat, slow_events[i].cat)
            << "event " << i;
        ASSERT_EQ(ff_events[i].a, slow_events[i].a) << "event " << i;
        ASSERT_EQ(ff_events[i].b, slow_events[i].b) << "event " << i;
    }

    // The fast-forward run additionally recorded its idle spans.
    const std::uint16_t ff_cat =
        TraceSink::categoryIndex(TraceCategory::FastForward);
    std::size_t spans = 0;
    ff_sim.trace()->visit([&](const TraceEvent &ev) {
        if (ev.cat == ff_cat)
            ++spans;
    });
    EXPECT_GT(spans, 0u);

    std::remove(ff_path.c_str());
    std::remove(slow_path.c_str());
}

TEST(TraceEquivalenceTest, TracingDoesNotPerturbStats)
{
    const std::string path =
        testing::TempDir() + "vsv_trace_stats.json";

    SimulationOptions traced = tracedOptions(path, true);
    SimulationOptions untraced = traced;
    untraced.trace = TraceConfig{};

    Simulator traced_sim(traced);
    traced_sim.run();
    Simulator untraced_sim(untraced);
    untraced_sim.run();

    // Every registered scalar and distribution, bit for bit.
    std::ostringstream traced_stats;
    traced_sim.stats().dumpJson(traced_stats);
    std::ostringstream untraced_stats;
    untraced_sim.stats().dumpJson(untraced_stats);
    EXPECT_EQ(traced_stats.str(), untraced_stats.str());

    std::remove(path.c_str());
}

TEST(TraceEquivalenceTest, ExportedJsonMatchesTransitionCounters)
{
    const std::string path =
        testing::TempDir() + "vsv_trace_export.json";

    Simulator sim(tracedOptions(path, true));
    const SimulationResult result = sim.run();
    ASSERT_GT(result.downTransitions, 0u);

    const minijson::Value doc = minijson::parse(slurp(path));
    EXPECT_EQ(doc.at("displayTimeUnit").str(), "ns");

    std::uint64_t down_slices = 0;
    std::uint64_t up_slices = 0;
    for (const minijson::Value &ev : doc.at("traceEvents").array()) {
        ASSERT_TRUE(ev.isObject());
        const std::string &ph = ev.at("ph").str();
        if (ph == "M")
            continue;
        // Exported timestamps are relative to the measured window.
        ASSERT_GE(ev.at("ts").num(), 0.0);
        ASSERT_LE(ev.at("ts").num(),
                  static_cast<double>(result.ticks));
        if (ph != "X")
            continue;
        const std::string &name = ev.at("name").str();
        if (name == "downClockDist")
            ++down_slices;
        else if (name == "upClockDist")
            ++up_slices;
    }
    EXPECT_EQ(down_slices, result.downTransitions);
    EXPECT_EQ(up_slices, result.upTransitions);

    std::remove(path.c_str());
}

TEST(TraceEquivalenceTest, DisabledCategoriesLeaveNoEvents)
{
    const std::string path =
        testing::TempDir() + "vsv_trace_catmask.json";

    SimulationOptions options = tracedOptions(path, true);
    options.trace.categories = TraceSink::parseCategories("mode,clock");
    Simulator sim(options);
    sim.run();

    const std::uint16_t mode_cat =
        TraceSink::categoryIndex(TraceCategory::Mode);
    const std::uint16_t clock_cat =
        TraceSink::categoryIndex(TraceCategory::Clock);
    ASSERT_NE(sim.trace(), nullptr);
    ASSERT_GT(sim.trace()->eventCount(), 0u);
    sim.trace()->visit([&](const TraceEvent &ev) {
        ASSERT_TRUE(ev.cat == mode_cat || ev.cat == clock_cat);
    });

    std::remove(path.c_str());
}

} // namespace
} // namespace vsv
