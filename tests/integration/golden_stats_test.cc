/**
 * @file
 * Golden-stats regression gate: replay a small pinned grid and
 * compare every registered scalar against the checked-in golden
 * JSON (tests/integration/golden_stats.json). Any drift - a new
 * scalar, a missing one, or a changed value - fails the test and
 * prints the offending names, so unintentional behaviour changes in
 * the simulator are caught by CI rather than by a reader of Figure 4.
 *
 * After an *intentional* behaviour change, regenerate the golden file
 * with `scripts/golden_stats.sh --update-golden` (or run this binary
 * with that flag) and commit the diff alongside the change.
 *
 * Values are compared exactly: the exporter prints %.17g, which
 * round-trips doubles bit for bit, and the simulator is deterministic
 * by contract (see DESIGN.md), so any tolerance would only mask bugs.
 */

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/minijson.hh"
#include "harness/experiment.hh"
#include "harness/warmup_cache.hh"

#ifndef VSV_GOLDEN_STATS_JSON
#error "build must define VSV_GOLDEN_STATS_JSON"
#endif

namespace vsv
{
namespace
{

bool update_golden = false;

/**
 * The pinned grid: small enough to run in seconds, wide enough to
 * exercise the baseline and the full VSV-FSM path on both a pointer
 * chaser (mcf) and a sequential-chain code (ammp).
 */
std::vector<SweepJob>
goldenGrid()
{
    std::vector<SweepJob> jobs;
    for (const char *bench : {"mcf", "ammp"}) {
        SimulationOptions base =
            makeOptions(bench, false, 20000, 5000);
        jobs.push_back({std::string(bench) + "/base", base});

        SimulationOptions fsm = base;
        fsm.vsv = fsmVsvConfig();
        jobs.push_back({std::string(bench) + "/fsm", fsm});
    }
    // One pinned multi-core point per rail policy: 2 cores of mcf
    // sharing the L2 under the full VSV-FSM path, so per-core stats,
    // bus arbitration and the rail policies all sit under the gate.
    for (const RailPolicy policy :
         {RailPolicy::PerCore, RailPolicy::SharedVote}) {
        SimulationOptions two = makeOptions("mcf", false, 20000, 5000);
        two.cores = 2;
        two.railPolicy = policy;
        two.vsv = fsmVsvConfig();
        jobs.push_back({std::string("mcf-2c/") +
                            std::string(railPolicyName(policy)) + "/fsm",
                        two});
    }
    return jobs;
}

using ScalarMap = std::map<std::string, double>;

std::map<std::string, ScalarMap>
runGrid(WarmupSnapshotCache *cache = nullptr)
{
    SweepRunner runner(0);
    if (cache)
        runner.enableWarmupSnapshots(*cache);
    std::map<std::string, ScalarMap> out;
    for (const SweepOutcome &outcome : runner.run(goldenGrid())) {
        EXPECT_EQ(outcome.status, SweepStatus::Ok) << outcome.error;
        out[outcome.id] = outcome.scalars;
    }
    return out;
}

void
writeGolden(const std::string &path,
            const std::map<std::string, ScalarMap> &grid)
{
    std::ofstream os(path);
    ASSERT_TRUE(os) << "cannot write " << path;
    os << "{\"runs\":{";
    bool first_run = true;
    for (const auto &[id, scalars] : grid) {
        os << (first_run ? "" : ",") << '"' << id
           << "\":{\"scalars\":{";
        bool first = true;
        for (const auto &[name, value] : scalars) {
            os << (first ? "" : ",") << '"' << name
               << "\":" << jsonNumber(value);
            first = false;
        }
        os << "}}";
        first_run = false;
    }
    os << "}}\n";
}

std::map<std::string, ScalarMap>
loadGolden(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        ADD_FAILURE() << "golden file " << path << " is missing; "
                      << "generate it with scripts/golden_stats.sh "
                      << "--update-golden and commit it";
        return {};
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();

    std::map<std::string, ScalarMap> out;
    const minijson::Value doc = minijson::parse(buffer.str());
    for (const auto &[id, run] : doc.at("runs").object()) {
        ScalarMap &scalars = out[id];
        for (const auto &[name, value] : run.at("scalars").object())
            scalars[name] = value.num();
    }
    return out;
}

/** Exact scalar-map comparison with name-level diagnostics. */
void
expectSameScalars(const std::string &id, const ScalarMap &golden,
                  const ScalarMap &current)
{
    for (const auto &[name, value] : golden) {
        const auto it = current.find(name);
        if (it == current.end()) {
            ADD_FAILURE() << id << ": scalar " << name
                          << " vanished (golden value "
                          << jsonNumber(value) << ")";
        } else if (it->second != value) {
            ADD_FAILURE() << id << ": scalar " << name << " drifted: "
                          << "golden " << jsonNumber(value) << ", now "
                          << jsonNumber(it->second);
        }
    }
    for (const auto &[name, value] : current) {
        if (!golden.count(name)) {
            ADD_FAILURE() << id << ": new scalar " << name << " = "
                          << jsonNumber(value)
                          << " is not in the golden file";
        }
    }
}

TEST(GoldenStatsTest, PinnedGridMatchesGoldenFile)
{
    const std::map<std::string, ScalarMap> current = runGrid();

    if (update_golden) {
        writeGolden(VSV_GOLDEN_STATS_JSON, current);
        std::cout << "updated " << VSV_GOLDEN_STATS_JSON << " with "
                  << current.size() << " runs\n";
        return;
    }

    const std::map<std::string, ScalarMap> golden =
        loadGolden(VSV_GOLDEN_STATS_JSON);
    if (golden.empty())
        return;  // loadGolden already failed the test

    for (const auto &[id, scalars] : golden) {
        if (!current.count(id))
            ADD_FAILURE() << "golden run " << id << " was not produced";
    }
    for (const auto &[id, scalars] : current) {
        const auto it = golden.find(id);
        if (it == golden.end()) {
            ADD_FAILURE() << "run " << id
                          << " has no golden entry; regenerate";
            continue;
        }
        expectSameScalars(id, it->second, scalars);
    }
}

TEST(GoldenStatsTest, CachedWarmupGridMatchesGoldenFile)
{
    // The warmup snapshot cache must hold the same golden line: a
    // sweep that warms each benchmark once and restores the rest has
    // to reproduce every pinned scalar exactly.
    if (update_golden)
        GTEST_SKIP() << "regeneration uses the uncached grid";

    const std::map<std::string, ScalarMap> golden =
        loadGolden(VSV_GOLDEN_STATS_JSON);
    if (golden.empty())
        return;  // loadGolden already failed the test

    WarmupSnapshotCache cache;
    const std::map<std::string, ScalarMap> current = runGrid(&cache);
    // One warmup each for mcf, ammp and 2-core mcf; both rail
    // policies of the 2-core point restore the same snapshot.
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 3u);
    EXPECT_EQ(cache.stats().failures, 0u);

    for (const auto &[id, scalars] : current) {
        const auto it = golden.find(id);
        if (it == golden.end()) {
            ADD_FAILURE() << "run " << id
                          << " has no golden entry; regenerate";
            continue;
        }
        expectSameScalars(id, it->second, scalars);
    }
}

TEST(GoldenStatsTest, LockstepGridMatchesGoldenFile)
{
    // The lockstep batch executor must hold the same golden line. The
    // pinned grid alone never batches (its configs are structurally
    // distinct), so run it alongside a "-dup" copy of each
    // single-core job: every pair shares a structural fingerprint and
    // forms a real 2-replica batch whose leader *and* replica outcome
    // must both match the pinned scalars exactly. The 2-core jobs
    // stay ineligible and take the serial path under the same runner.
    if (update_golden)
        GTEST_SKIP() << "regeneration uses the uncached grid";

    const std::map<std::string, ScalarMap> golden =
        loadGolden(VSV_GOLDEN_STATS_JSON);
    if (golden.empty())
        return;  // loadGolden already failed the test

    std::vector<SweepJob> jobs = goldenGrid();
    const std::size_t pinned = jobs.size();
    for (std::size_t i = 0; i < pinned; ++i) {
        if (jobs[i].options.cores != 1)
            continue;
        SweepJob dup = jobs[i];
        dup.id += "-dup";
        jobs.push_back(std::move(dup));
    }

    SweepRunner runner(0);
    runner.enableLockstep(16);
    const std::vector<SweepOutcome> outcomes = runner.run(jobs);

    const LockstepStats &stats = runner.lockstepStats();
    EXPECT_EQ(stats.batches, 4u);
    EXPECT_EQ(stats.batchedRuns, 8u);
    EXPECT_EQ(stats.serialRuns, 2u);
    EXPECT_EQ(stats.fallbacks, 0u);
    ASSERT_EQ(stats.ineligible.size(), 1u);
    EXPECT_EQ(stats.ineligible.at("multi-core"), 2u);

    for (const SweepOutcome &outcome : outcomes) {
        EXPECT_EQ(outcome.status, SweepStatus::Ok) << outcome.error;
        std::string id = outcome.id;
        if (id.size() > 4 && id.compare(id.size() - 4, 4, "-dup") == 0)
            id.resize(id.size() - 4);
        const auto it = golden.find(id);
        if (it == golden.end()) {
            ADD_FAILURE() << "run " << outcome.id
                          << " has no golden entry; regenerate";
            continue;
        }
        expectSameScalars(outcome.id, it->second, outcome.scalars);
    }
}

TEST(GoldenStatsTest, SelfTestDetectsAPerturbedScalar)
{
    // The comparison must actually be able to fail: perturb one
    // scalar and one name and confirm both are flagged.
    ScalarMap golden{{"cpu.committed", 20000.0}, {"vsv.downs", 3.0}};
    ScalarMap drifted = golden;
    drifted["cpu.committed"] = 20001.0;

    ::testing::TestPartResultArray failures;
    {
        ::testing::ScopedFakeTestPartResultReporter reporter(
            ::testing::ScopedFakeTestPartResultReporter::
                INTERCEPT_ONLY_CURRENT_THREAD,
            &failures);
        expectSameScalars("self/drift", golden, drifted);

        ScalarMap missing = golden;
        missing.erase("vsv.downs");
        expectSameScalars("self/missing", golden, missing);
    }
    ASSERT_EQ(failures.size(), 2);
    EXPECT_NE(std::string(failures.GetTestPartResult(0).message())
                  .find("drifted"),
              std::string::npos);
    EXPECT_NE(std::string(failures.GetTestPartResult(1).message())
                  .find("vanished"),
              std::string::npos);
}

} // namespace
} // namespace vsv

int
main(int argc, char **argv)
{
    // Strip our flag before gtest sees the command line.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-golden") == 0)
            vsv::update_golden = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;
    ::testing::InitGoogleTest(&argc, argv);
    if (vsv::update_golden) {
        // Only the regeneration path; the self-test is irrelevant.
        ::testing::GTEST_FLAG(filter) =
            "GoldenStatsTest.PinnedGridMatchesGoldenFile";
    }
    return RUN_ALL_TESTS();
}
