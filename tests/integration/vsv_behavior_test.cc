/**
 * @file
 * End-to-end behavioural properties of the full stack - the
 * monotonicities and orderings the paper's figures rest on, asserted
 * on small windows so they hold for any future calibration.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/simulator.hh"

namespace vsv
{
namespace
{

SimulationResult
runOnce(SimulationOptions options)
{
    Simulator sim(options);
    return sim.run();
}

double
savingsWith(const SimulationResult &base, const std::string &bench,
            const VsvConfig &config, std::uint64_t insts,
            std::uint64_t warmup)
{
    SimulationOptions options = makeOptions(bench, false, insts, warmup);
    options.vsv = config;
    return makeComparison(base, runOnce(options)).powerSavingsPct;
}

TEST(VsvBehaviorTest, DownThresholdSavingsAreMonotonic)
{
    // Figure 5's backbone: lower thresholds never save less.
    const SimulationResult base =
        runOnce(makeOptions("mcf", false, 60000, 150000));
    double prev = 1e9;
    for (const std::uint32_t threshold : {0u, 1u, 3u, 5u}) {
        VsvConfig config = fsmVsvConfig();
        config.down = {threshold, 10};
        const double save =
            savingsWith(base, "mcf", config, 60000, 150000);
        EXPECT_LE(save, prev + 0.8) << "threshold " << threshold;
        prev = save;
    }
}

TEST(VsvBehaviorTest, UpPolicySavingsOrdering)
{
    // Figure 6's backbone: First-R <= FSM <= Last-R in savings.
    const SimulationResult base =
        runOnce(makeOptions("mcf", false, 60000, 150000));

    VsvConfig first = fsmVsvConfig();
    first.upPolicy = UpPolicy::FirstR;
    VsvConfig fsm = fsmVsvConfig();
    VsvConfig last = fsmVsvConfig();
    last.upPolicy = UpPolicy::LastR;

    const double s_first = savingsWith(base, "mcf", first, 60000, 150000);
    const double s_fsm = savingsWith(base, "mcf", fsm, 60000, 150000);
    const double s_last = savingsWith(base, "mcf", last, 60000, 150000);

    EXPECT_LE(s_first, s_fsm + 0.5);
    EXPECT_LE(s_fsm, s_last + 0.5);
    EXPECT_GT(s_last, s_first);  // the spread is real
}

TEST(VsvBehaviorTest, VsvNeverSpeedsThingsUp)
{
    // Per-instruction time with VSV can only grow.
    for (const char *bench : {"mcf", "ammp", "gzip"}) {
        const SimulationOptions base_opts =
            makeOptions(bench, false, 50000, 100000);
        const SimulationResult base = runOnce(base_opts);
        SimulationOptions vsv_opts = base_opts;
        vsv_opts.vsv = fsmVsvConfig();
        const VsvComparison cmp =
            makeComparison(base, runOnce(vsv_opts));
        EXPECT_GE(cmp.perfDegradationPct, -0.2) << bench;
    }
}

TEST(VsvBehaviorTest, TimekeepingCutsAmmpMissesEndToEnd)
{
    const SimulationResult base =
        runOnce(makeOptions("ammp", false, 100000, 200000));
    const SimulationResult tk =
        runOnce(makeOptions("ammp", true, 100000, 0));
    EXPECT_LT(tk.mr, 0.3 * base.mr);
}

TEST(VsvBehaviorTest, StridePrefetcherCutsAmmpMissesEndToEnd)
{
    const SimulationResult base =
        runOnce(makeOptions("ammp", false, 100000, 200000));
    SimulationOptions stride = makeOptions("ammp", false, 100000, 200000);
    stride.stridePrefetch = true;
    const SimulationResult with = runOnce(stride);
    EXPECT_LT(with.mr, 0.3 * base.mr);
}

TEST(VsvBehaviorTest, TraceReplayMatchesGeneratorResults)
{
    // Capture vpr's stream, then run the same window from the trace:
    // identical instruction-level behaviour implies identical timing.
    const std::string path = "/tmp/vsv_behavior_trace.vsvt";
    {
        WorkloadGenerator gen(spec2kProfile("vpr"));
        TraceWriter writer(path);
        // Cover pre-warm consumption (warmup ops + measured window).
        for (int i = 0; i < 220000; ++i)
            writer.append(gen.next());
    }

    SimulationOptions from_gen = makeOptions("vpr", false, 60000, 120000);
    const SimulationResult a = runOnce(from_gen);

    SimulationOptions from_trace = makeOptions("vpr", false, 60000,
                                               120000);
    from_trace.tracePath = path;
    const SimulationResult b = runOnce(from_trace);
    std::remove(path.c_str());

    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_DOUBLE_EQ(a.mr, b.mr);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(VsvBehaviorTest, LeakierNodeKeepsVsvEffective)
{
    SimulationOptions base_opts = makeOptions("mcf", false, 50000,
                                              100000);
    base_opts.power.leakageFraction = 0.10;
    const SimulationResult base = runOnce(base_opts);

    SimulationOptions vsv_opts = base_opts;
    vsv_opts.vsv = fsmVsvConfig();
    const VsvComparison cmp = makeComparison(base, runOnce(vsv_opts));
    EXPECT_GT(cmp.powerSavingsPct, 10.0);
}

TEST(VsvBehaviorTest, IdealGatingShrinksVsvOpportunity)
{
    // If gating were perfect, stall cycles would already be nearly
    // free and VSV could only save clock-tree and active-op power.
    SimulationOptions dcg_opts = makeOptions("mcf", false, 50000,
                                             100000);
    const SimulationResult dcg_base = runOnce(dcg_opts);
    SimulationOptions dcg_vsv = dcg_opts;
    dcg_vsv.vsv = fsmVsvConfig();
    const double dcg_save =
        makeComparison(dcg_base, runOnce(dcg_vsv)).powerSavingsPct;

    SimulationOptions ideal_opts = dcg_opts;
    ideal_opts.power.gating = GatingStyle::Ideal;
    const SimulationResult ideal_base = runOnce(ideal_opts);
    SimulationOptions ideal_vsv = ideal_opts;
    ideal_vsv.vsv = fsmVsvConfig();
    const double ideal_save =
        makeComparison(ideal_base, runOnce(ideal_vsv)).powerSavingsPct;

    EXPECT_LT(ideal_save, dcg_save);
    EXPECT_GT(ideal_save, 0.0);  // clock tree still scales
}

} // namespace
} // namespace vsv
