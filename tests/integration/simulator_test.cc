/**
 * @file
 * End-to-end smoke and behaviour tests of the full simulator.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/simulator.hh"

namespace vsv
{
namespace
{

SimulationOptions
smallOptions(const std::string &bench, bool tk = false)
{
    SimulationOptions options = makeOptions(bench, tk, 50000, 20000);
    return options;
}

TEST(SimulatorTest, BaselineRunsToCompletion)
{
    Simulator sim(smallOptions("gzip"));
    const SimulationResult result = sim.run();
    // Commit width allows a few instructions of overshoot.
    EXPECT_GE(result.instructions, 50000u);
    EXPECT_LE(result.instructions, 50008u);
    EXPECT_GT(result.ipc, 0.1);
    EXPECT_LE(result.ipc, 8.0);
    EXPECT_GT(result.avgPowerW, 0.0);
}

TEST(SimulatorTest, BaselineNeverLeavesHighPowerMode)
{
    Simulator sim(smallOptions("mcf"));
    const SimulationResult result = sim.run();
    EXPECT_EQ(result.downTransitions, 0u);
    EXPECT_EQ(result.upTransitions, 0u);
    EXPECT_DOUBLE_EQ(result.lowModeFraction, 0.0);
}

TEST(SimulatorTest, VsvEntersLowPowerModeOnMissyWorkload)
{
    SimulationOptions options = smallOptions("mcf");
    options.vsv = fsmVsvConfig();
    Simulator sim(options);
    const SimulationResult result = sim.run();
    EXPECT_GT(result.downTransitions, 0u);
    EXPECT_GT(result.lowModeFraction, 0.1);
}

TEST(SimulatorTest, VsvSavesPowerOnMcf)
{
    const VsvComparison cmp =
        compareVsv(smallOptions("mcf"), fsmVsvConfig());
    EXPECT_GT(cmp.powerSavingsPct, 5.0);
    EXPECT_LT(cmp.perfDegradationPct, 15.0);
}

TEST(SimulatorTest, VsvDoesNothingOnCacheResidentWorkload)
{
    const VsvComparison cmp =
        compareVsv(smallOptions("crafty"), fsmVsvConfig());
    EXPECT_NEAR(cmp.powerSavingsPct, 0.0, 1.0);
    EXPECT_NEAR(cmp.perfDegradationPct, 0.0, 1.0);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    Simulator a(smallOptions("vpr"));
    Simulator b(smallOptions("vpr"));
    const SimulationResult ra = a.run();
    const SimulationResult rb = b.run();
    EXPECT_EQ(ra.ticks, rb.ticks);
    EXPECT_DOUBLE_EQ(ra.energyPj, rb.energyPj);
    EXPECT_DOUBLE_EQ(ra.mr, rb.mr);
}

} // namespace
} // namespace vsv
