/**
 * @file
 * Multi-core contracts: per-core stats that sum to the aggregates,
 * shared-rail lockstep behavior, fast-forward and snapshot/restore
 * bit-identity with 2 cores, warmup-snapshot sharing across rail
 * policies, fingerprint-keyed resume, and the N=1 guarantee that the
 * multi-core simulator registers exactly the legacy stat surface.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/warmup_cache.hh"
#include "workload/workload.hh"

namespace vsv
{
namespace
{

SimulationOptions
twoCoreOptions(RailPolicy policy, bool with_vsv)
{
    SimulationOptions options = makeOptions("mcf", false, 20000, 5000);
    options.cores = 2;
    options.railPolicy = policy;
    if (with_vsv)
        options.vsv = fsmVsvConfig();
    return options;
}

/** 2-core grid: both rail policies x {baseline, VSV-FSM}. */
std::vector<SweepJob>
twoCoreGrid(bool fast_forward)
{
    std::vector<SweepJob> jobs;
    for (const RailPolicy policy :
         {RailPolicy::PerCore, RailPolicy::SharedVote}) {
        for (const bool vsv : {false, true}) {
            SimulationOptions options = twoCoreOptions(policy, vsv);
            options.fastForward = fast_forward;
            jobs.push_back({std::string("mcf-2c/") +
                                std::string(railPolicyName(policy)) +
                                (vsv ? "/fsm" : "/base"),
                            options});
        }
    }
    return jobs;
}

TEST(MulticoreTest, PerCoreStatsSumToAggregates)
{
    SimulationOptions options =
        twoCoreOptions(RailPolicy::PerCore, true);
    options.coreBenchmarks = {"mcf", "ammp"};
    const SweepOutcome out = SweepRunner::runOne({"mix", options});

    ASSERT_EQ(out.result.perCore.size(), 2u);
    EXPECT_EQ(out.result.perCore[0].benchmark, "mcf");
    EXPECT_EQ(out.result.perCore[1].benchmark, "ammp");

    // The whole-run numbers are sums of the per-core breakdown.
    std::uint64_t insts = 0, downs = 0, ups = 0;
    for (const CoreRunResult &pc : out.result.perCore) {
        insts += pc.instructions;
        downs += pc.downTransitions;
        ups += pc.upTransitions;
        EXPECT_GT(pc.instructions, 0u) << pc.benchmark;
    }
    EXPECT_EQ(out.result.instructions, insts);
    EXPECT_EQ(out.result.downTransitions, downs);
    EXPECT_EQ(out.result.upTransitions, ups);

    // Per-core scalar trees exist and agree with the breakdown.
    ASSERT_TRUE(out.scalars.count("core0.cpu.committed"));
    ASSERT_TRUE(out.scalars.count("core1.cpu.committed"));
    EXPECT_EQ(out.scalars.at("core0.cpu.committed") +
                  out.scalars.at("core1.cpu.committed"),
              static_cast<double>(insts));
    // The shared hierarchy registers once, unprefixed.
    EXPECT_TRUE(out.scalars.count("mem.demandL2Misses"));
    EXPECT_FALSE(out.scalars.count("core0.mem.demandL2Misses"));
}

TEST(MulticoreTest, SharedRailMovesInLockstep)
{
    const SweepOutcome out = SweepRunner::runOne(
        {"shared", twoCoreOptions(RailPolicy::SharedVote, true)});

    ASSERT_EQ(out.result.perCore.size(), 2u);
    const CoreRunResult &a = out.result.perCore[0];
    const CoreRunResult &b = out.result.perCore[1];
    // One physical rail: both cores transition at the same ticks and
    // spend identical time on the low-power path.
    EXPECT_GT(a.downTransitions, 0u);
    EXPECT_EQ(a.downTransitions, b.downTransitions);
    EXPECT_EQ(a.upTransitions, b.upTransitions);
    EXPECT_DOUBLE_EQ(a.lowModeFraction, b.lowModeFraction);

    // The arbiter accounts its votes; every group down needs at least
    // one vote per core.
    ASSERT_TRUE(out.scalars.count("rail.groupDowns"));
    const double group_downs = out.scalars.at("rail.groupDowns");
    EXPECT_EQ(group_downs, static_cast<double>(a.downTransitions));
    EXPECT_GE(out.scalars.at("rail.votes"), 2.0 * group_downs);
}

TEST(MulticoreTest, TwoCoreFastForwardIsBitIdentical)
{
    SweepRunner runner(4);
    const std::vector<SweepOutcome> on = runner.run(twoCoreGrid(true));
    const std::vector<SweepOutcome> off = runner.run(twoCoreGrid(false));
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i) {
        ASSERT_EQ(on[i].id, off[i].id);
        EXPECT_EQ(on[i].scalars, off[i].scalars) << on[i].id;
        EXPECT_EQ(on[i].statsJson, off[i].statsJson) << on[i].id;
        EXPECT_EQ(on[i].result.ticks, off[i].result.ticks) << on[i].id;
        EXPECT_EQ(off[i].result.fastForwardedTicks, 0u) << on[i].id;
        // The stall-heavy 2-core VSV runs must actually skip ticks or
        // the multi-core fast-forward is dead code.
        if (on[i].id.find("/fsm") != std::string::npos) {
            EXPECT_GT(on[i].result.fastForwardedTicks, 0u) << on[i].id;
        }
    }
}

TEST(MulticoreTest, TwoCoreSnapshotRestoreIsBitIdentical)
{
    // warmup -> snapshot -> restore -> run must equal warmup -> run
    // with 2 cores too: per-core power banking, the shared hierarchy
    // and both workload streams all round-trip through the snapshot.
    const SimulationOptions options =
        twoCoreOptions(RailPolicy::SharedVote, true);
    const std::string fp = warmupFingerprint(options);

    Simulator reference(options);
    reference.warmup();
    std::ostringstream snap;
    reference.snapshotTo(snap, fp);
    const SimulationResult ref_result = reference.run();

    Simulator restored(options);
    std::istringstream is(snap.str());
    restored.restoreFrom(is, fp);
    const SimulationResult result = restored.run();

    EXPECT_EQ(result.ticks, ref_result.ticks);
    EXPECT_EQ(result.instructions, ref_result.instructions);
    // Bit-equal energies prove the banked idle-tick accrual (pending
    // idle edges travel un-flushed in the snapshot) replays exactly,
    // for the per-core models and the uncore model alike.
    EXPECT_EQ(result.energyPj, ref_result.energyPj);
    for (std::size_t c = 0; c < result.perCore.size(); ++c) {
        EXPECT_EQ(result.perCore[c].energyPj,
                  ref_result.perCore[c].energyPj)
            << "core " << c;
    }
    EXPECT_EQ(reference.stats().scalarMap(),
              restored.stats().scalarMap());
}

TEST(MulticoreTest, RailPoliciesShareOneWarmupSnapshot)
{
    // Both rail policies (and baseline vs VSV) of the same 2-core
    // workload share a warmup fingerprint: a 4-job campaign warms up
    // exactly once. Their config fingerprints stay distinct, so
    // --resume still keys results correctly.
    WarmupSnapshotCache cache;
    SweepRunner runner(2);
    runner.enableWarmupSnapshots(cache);
    const std::vector<SweepOutcome> outcomes =
        runner.run(twoCoreGrid(true));

    ASSERT_EQ(outcomes.size(), 4u);
    for (const SweepOutcome &out : outcomes)
        EXPECT_EQ(out.status, SweepStatus::Ok) << out.id;
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 3u);

    // Same policy+VSV config -> same fingerprint; anything else
    // differs.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        for (std::size_t j = i + 1; j < outcomes.size(); ++j) {
            EXPECT_NE(outcomes[i].fingerprint, outcomes[j].fingerprint)
                << outcomes[i].id << " vs " << outcomes[j].id;
        }
    }
}

TEST(MulticoreTest, TwoCoreSweepResumesByFingerprint)
{
    // A completed 2-core campaign's manifest resumes: every run is
    // carried forward when its id and config fingerprint match, and a
    // core-count change invalidates the match.
    SweepRunner runner(2);
    const std::vector<SweepJob> jobs = twoCoreGrid(true);
    const std::vector<SweepOutcome> outcomes = runner.run(jobs);

    SweepManifest manifest;
    manifest.tool = "multicore-test";
    std::ostringstream doc;
    writeSweepJson(doc, manifest, outcomes);
    const std::string path = "MULTICORE_resume_test.json";
    {
        std::ofstream os(path);
        os << doc.str();
    }

    const SweepResume resume = SweepResume::load(path);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string fp = configFingerprint(jobs[i].options);
        EXPECT_NE(resume.completed(jobs[i].id, fp), nullptr)
            << jobs[i].id;

        SimulationOptions more_cores = jobs[i].options;
        more_cores.cores = 4;
        EXPECT_EQ(resume.completed(jobs[i].id,
                                   configFingerprint(more_cores)),
                  nullptr)
            << jobs[i].id;
    }
    std::remove(path.c_str());
}

TEST(MulticoreTest, SingleCoreKeepsTheLegacyStatSurface)
{
    // cores=1 must be indistinguishable from the pre-multicore
    // simulator: legacy unprefixed stat names, no core0./rail. trees,
    // no perCore breakdown. (Bit-identical *values* are enforced by
    // the golden-stats gate.)
    SimulationOptions options = makeOptions("mcf", false, 20000, 5000);
    options.vsv = fsmVsvConfig();
    options.cores = 1;
    const SweepOutcome out = SweepRunner::runOne({"mcf-1c", options});

    EXPECT_TRUE(out.result.perCore.empty());
    for (const char *name :
         {"cpu.committed", "power.ticks", "vsv.downTransitions",
          "bpred.lookups", "mem.demandL2Misses"}) {
        EXPECT_TRUE(out.scalars.count(name)) << name;
    }
    for (const auto &[name, value] : out.scalars) {
        EXPECT_EQ(name.rfind("core0.", 0), std::string::npos) << name;
        EXPECT_EQ(name.rfind("rail.", 0), std::string::npos) << name;
    }
}

} // namespace
} // namespace vsv
