/**
 * @file
 * Tier-1 multi-core smoke gate (the `multicore_smoke` ctest): a short
 * 2-core run under each rail policy must complete, commit the target
 * window on both cores, and actually exercise the shared rail's group
 * mechanics. Deep equivalence checks live in multicore_test.cc; this
 * binary is the fast always-on canary.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace vsv
{
namespace
{

TEST(MulticoreSmoke, BothRailPoliciesCompleteATwoCoreRun)
{
    for (const RailPolicy policy :
         {RailPolicy::PerCore, RailPolicy::SharedVote}) {
        SimulationOptions options =
            makeOptions("mcf", false, 8000, 3000);
        options.cores = 2;
        options.railPolicy = policy;
        options.vsv = fsmVsvConfig();

        const SweepOutcome out = SweepRunner::runOneIsolated(
            {std::string(railPolicyName(policy)), options});
        ASSERT_EQ(out.status, SweepStatus::Ok)
            << railPolicyName(policy) << ": " << out.error;

        ASSERT_EQ(out.result.perCore.size(), 2u);
        for (const CoreRunResult &pc : out.result.perCore) {
            EXPECT_GE(pc.instructions, 8000u)
                << railPolicyName(policy);
        }
        EXPECT_GT(out.result.downTransitions, 0u)
            << railPolicyName(policy);
        if (policy == RailPolicy::SharedVote) {
            EXPECT_GT(out.scalars.at("rail.groupDowns"), 0.0);
        }
    }
}

} // namespace
} // namespace vsv
