/**
 * @file
 * Tier-1 campaign smoke gate (the `campaign_smoke` ctest): a tiny
 * grid sharded across two forked local workers must come back
 * complete, in submission order, with stats identical to in-process
 * execution. The deep checks - SIGKILL mid-campaign, TCP workers,
 * drifted-grid refusal, manifest byte-identity - live in
 * tests/campaign/campaign_equivalence_test.cc; this binary is the
 * fast always-on canary that the coordinator/worker path stays wired
 * up.
 */

#include <gtest/gtest.h>

#include <vector>

#include "campaign/campaign.hh"
#include "campaign/coordinator.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace vsv
{
namespace
{

TEST(CampaignSmoke, TwoLocalWorkersMatchInProcess)
{
    SimulationOptions base = makeOptions("mcf", false, 8000, 3000);
    SimulationOptions fsm = base;
    fsm.vsv = fsmVsvConfig();
    SimulationOptions no_fsm = base;
    no_fsm.vsv = noFsmVsvConfig();
    const std::vector<SweepJob> jobs{
        {"mcf/base", base},
        {"mcf/no-fsm", no_fsm},
        {"mcf/fsm", fsm},
    };

    ExperimentArgs serial;
    serial.jobs = 1;
    const std::vector<SweepOutcome> want =
        runSweep(serial, "campaign_smoke", jobs);

    ExperimentArgs camp;
    camp.jobs = 1;
    camp.campaignWorkers = 2;
    camp.campaignChunk = 1;
    CampaignStats stats;
    const auto capture = [&stats](campaign::Coordinator &coordinator) {
        coordinator.setOutcomeHook(
            [&stats, &coordinator](std::uint64_t,
                                   const SweepOutcome &) {
                stats = coordinator.stats();
            });
    };
    const std::vector<SweepOutcome> got = campaign::runCampaignSweep(
        camp, "campaign_smoke", jobs, capture);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].status, SweepStatus::Ok)
            << got[i].id << ": " << got[i].error;
        EXPECT_EQ(got[i].id, want[i].id);
        EXPECT_EQ(got[i].attempts, want[i].attempts) << got[i].id;
        EXPECT_EQ(got[i].scalars, want[i].scalars) << got[i].id;
        EXPECT_EQ(got[i].statsJson, want[i].statsJson) << got[i].id;
    }
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.localWorkers, 2u);
    EXPECT_GE(stats.workersJoined, 1u);
    EXPECT_EQ(stats.deaths, 0u);
    EXPECT_EQ(stats.abandonedRuns, 0u);
}

} // namespace
} // namespace vsv
