/** IntervalStatsSampler unit tests: binning, baselines, edges. */

#include <bit>
#include <vector>

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "trace/interval.hh"
#include "trace/sink.hh"

namespace vsv
{
namespace
{

struct Sampled
{
    Tick ts;
    std::string series;
    double value;
};

std::vector<Sampled>
collect(const TraceSink &sink)
{
    std::vector<Sampled> out;
    sink.visit([&](const TraceEvent &ev) {
        ASSERT_EQ(static_cast<TraceEventKind>(ev.kind),
                  TraceEventKind::IntervalValue);
        out.push_back(
            {ev.ts,
             sink.internedString(static_cast<std::uint32_t>(ev.a)),
             std::bit_cast<double>(ev.b)});
    });
    return out;
}

TEST(IntervalStatsSamplerTest, BinsPerTickRates)
{
    TraceSink sink;
    StatRegistry registry;
    Scalar committed;
    registry.registerScalar("cpu.committed", &committed, "test");

    committed += 50.0;  // pre-baseline work must not leak into epochs
    IntervalStatsSampler sampler(sink, registry, 100, {"cpu.committed"},
                                 1000);
    EXPECT_EQ(sampler.nextSampleAt(), 1100u);

    committed += 30.0;
    sampler.sample(1100);
    EXPECT_EQ(sampler.nextSampleAt(), 1200u);
    committed += 10.0;
    sampler.sample(1200);

    const std::vector<Sampled> samples = collect(sink);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].ts, 1000u);  // epochs stamp their start tick
    EXPECT_EQ(samples[0].series, "interval.cpu.committed");
    EXPECT_DOUBLE_EQ(samples[0].value, 0.3);
    EXPECT_EQ(samples[1].ts, 1100u);
    EXPECT_DOUBLE_EQ(samples[1].value, 0.1);
}

TEST(IntervalStatsSamplerTest, LateSampleUsesRealSpan)
{
    // Fast-forward can overshoot a boundary only up to the horizon
    // cap; a later per-tick boundary still divides by the true span.
    TraceSink sink;
    StatRegistry registry;
    Scalar misses;
    registry.registerScalar("mem.demandL2Misses", &misses, "test");

    IntervalStatsSampler sampler(sink, registry, 100,
                                 {"mem.demandL2Misses"}, 0);
    misses += 30.0;
    sampler.sample(150);  // epoch [0, 150)
    EXPECT_EQ(sampler.nextSampleAt(), 250u);

    const std::vector<Sampled> samples = collect(sink);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_DOUBLE_EQ(samples[0].value, 0.2);
}

TEST(IntervalStatsSamplerTest, FinishEmitsPartialEpoch)
{
    TraceSink sink;
    StatRegistry registry;
    Scalar committed;
    registry.registerScalar("cpu.committed", &committed, "test");

    IntervalStatsSampler sampler(sink, registry, 100, {"cpu.committed"},
                                 0);
    committed += 100.0;
    sampler.sample(100);
    committed += 5.0;
    sampler.finish(150);  // partial epoch [100, 150)

    const std::vector<Sampled> samples = collect(sink);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[1].ts, 100u);
    EXPECT_DOUBLE_EQ(samples[1].value, 0.1);
}

TEST(IntervalStatsSamplerTest, FinishAtBoundaryEmitsNothing)
{
    TraceSink sink;
    StatRegistry registry;
    Scalar committed;
    registry.registerScalar("cpu.committed", &committed, "test");

    IntervalStatsSampler sampler(sink, registry, 100, {"cpu.committed"},
                                 0);
    sampler.sample(100);
    sampler.finish(100);  // zero-length tail: no empty epoch
    EXPECT_EQ(sink.eventCount(), 1u);
}

TEST(IntervalStatsSamplerTest, EnergyProbeReportsWatts)
{
    TraceSink sink;
    StatRegistry registry;

    IntervalStatsSampler sampler(sink, registry, 1000, {}, 0);
    double energy = 500.0;  // pJ; captured as the baseline below
    sampler.setEnergyProbe([&energy] { return energy; });

    energy += 2000.0;  // 2000 pJ over 1000 ns = 2 mW
    sampler.sample(1000);

    const std::vector<Sampled> samples = collect(sink);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_EQ(samples[0].series, "interval.powerW");
    EXPECT_DOUBLE_EQ(samples[0].value, 0.002);
}

TEST(IntervalStatsSamplerTest, MaskedCategoryRecordsNothing)
{
    TraceSink sink(static_cast<std::uint32_t>(TraceCategory::Mode));
    StatRegistry registry;
    IntervalStatsSampler sampler(sink, registry, 100, {}, 0);
    sampler.sample(100);
    EXPECT_EQ(sink.eventCount(), 0u);
}

TEST(IntervalStatsSamplerDeathTest, UnknownScalarIsFatal)
{
    TraceSink sink;
    StatRegistry registry;
    EXPECT_EXIT(IntervalStatsSampler(sink, registry, 100,
                                     {"no.such.scalar"}, 0),
                testing::ExitedWithCode(1), "no.such.scalar");
}

} // namespace
} // namespace vsv
