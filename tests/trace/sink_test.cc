/** TraceSink unit tests: recording, filtering, interning, export. */

#include <bit>
#include <sstream>

#include <gtest/gtest.h>

#include "trace/sink.hh"

#include "common/minijson.hh"

namespace vsv
{
namespace
{

TEST(TraceSinkTest, StartsEmpty)
{
    TraceSink sink;
    EXPECT_EQ(sink.eventCount(), 0u);
    std::size_t visited = 0;
    sink.visit([&](const TraceEvent &) { ++visited; });
    EXPECT_EQ(visited, 0u);
}

TEST(TraceSinkTest, RecordsInOrder)
{
    TraceSink sink;
    sink.record(TraceCategory::Mshr, TraceEventKind::MshrLevel, 10, 3);
    sink.record(TraceCategory::Mshr, TraceEventKind::MshrLevel, 20, 5);
    ASSERT_EQ(sink.eventCount(), 2u);

    std::vector<TraceEvent> events;
    sink.visit([&](const TraceEvent &ev) { events.push_back(ev); });
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].ts, 10u);
    EXPECT_EQ(events[0].a, 3u);
    EXPECT_EQ(events[1].ts, 20u);
    EXPECT_EQ(events[1].a, 5u);
    EXPECT_EQ(events[0].kind,
              static_cast<std::uint16_t>(TraceEventKind::MshrLevel));
}

TEST(TraceSinkTest, CategoryMaskFiltersRecording)
{
    TraceSink sink(static_cast<std::uint32_t>(TraceCategory::Mode) |
                   static_cast<std::uint32_t>(TraceCategory::Power));
    EXPECT_TRUE(sink.wants(TraceCategory::Mode));
    EXPECT_TRUE(sink.wants(TraceCategory::Power));
    EXPECT_FALSE(sink.wants(TraceCategory::Fsm));
    EXPECT_FALSE(sink.wants(TraceCategory::Interval));

    sink.record(TraceCategory::Mode, TraceEventKind::ModeEnter, 1,
                sink.internString("high"));
    sink.record(TraceCategory::Fsm, TraceEventKind::FsmArm, 2,
                traceFsmDown);
    sink.record(TraceCategory::Power, TraceEventKind::RampEnergy, 3, 0);
    EXPECT_EQ(sink.eventCount(), 2u);

    sink.visit([&](const TraceEvent &ev) {
        EXPECT_NE(ev.kind,
                  static_cast<std::uint16_t>(TraceEventKind::FsmArm));
    });
}

TEST(TraceSinkTest, SlabOverflowKeepsEveryEvent)
{
    // More than one 65536-event slab, in order across the boundary.
    constexpr std::size_t n = 150000;
    TraceSink sink;
    for (std::size_t i = 0; i < n; ++i) {
        sink.record(TraceCategory::Mshr, TraceEventKind::MshrLevel, i,
                    i * 2);
    }
    ASSERT_EQ(sink.eventCount(), n);

    std::size_t expected = 0;
    sink.visit([&](const TraceEvent &ev) {
        ASSERT_EQ(ev.ts, expected);
        ASSERT_EQ(ev.a, expected * 2);
        ++expected;
    });
    EXPECT_EQ(expected, n);
}

TEST(TraceSinkTest, InterningIsStable)
{
    TraceSink sink;
    const std::uint32_t a = sink.internString("interval.powerW");
    const std::uint32_t b = sink.internString("interval.ipc");
    const std::uint32_t a2 = sink.internString("interval.powerW");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    EXPECT_EQ(sink.internedString(a), "interval.powerW");
    EXPECT_EQ(sink.internedString(b), "interval.ipc");
}

TEST(TraceSinkTest, ParseCategories)
{
    EXPECT_EQ(TraceSink::parseCategories(""), allTraceCategories);
    EXPECT_EQ(TraceSink::parseCategories("all"), allTraceCategories);
    EXPECT_EQ(TraceSink::parseCategories("mode"),
              static_cast<std::uint32_t>(TraceCategory::Mode));
    EXPECT_EQ(TraceSink::parseCategories("mode,fsm,ff"),
              static_cast<std::uint32_t>(TraceCategory::Mode) |
                  static_cast<std::uint32_t>(TraceCategory::Fsm) |
                  static_cast<std::uint32_t>(
                      TraceCategory::FastForward));
    EXPECT_EXIT(TraceSink::parseCategories("modes"),
                testing::ExitedWithCode(1), "unknown trace category");
}

TEST(TraceSinkTest, CategoryNamesRoundTrip)
{
    for (std::uint32_t bit = 0; (1u << bit) <= allTraceCategories;
         ++bit) {
        const auto cat = static_cast<TraceCategory>(1u << bit);
        const std::string name(TraceSink::categoryName(cat));
        EXPECT_EQ(TraceSink::parseCategories(name),
                  static_cast<std::uint32_t>(cat));
        EXPECT_EQ(TraceSink::categoryIndex(cat), bit);
    }
}

/** Export a scripted event mix and strictly parse it back. */
TEST(TraceSinkTest, ChromeJsonParsesBack)
{
    TraceSink sink;
    const std::uint32_t high = sink.internString("high");
    const std::uint32_t down = sink.internString("downClockDist");
    const std::uint32_t series = sink.internString("interval.powerW");

    const Tick origin = 1000;
    sink.record(TraceCategory::Mode, TraceEventKind::ModeEnter, 1000,
                high);
    sink.record(TraceCategory::Fsm, TraceEventKind::FsmArm, 1010,
                traceFsmDown);
    sink.record(TraceCategory::Fsm, TraceEventKind::FsmObserve, 1020,
                traceFsmDown, packFsmObserve(0, 1));  // watching
    sink.record(TraceCategory::Fsm, TraceEventKind::FsmObserve, 1030,
                traceFsmDown, packFsmObserve(0, 2));  // fired
    sink.record(TraceCategory::Mode, TraceEventKind::ModeEnter, 1030,
                down);
    sink.record(TraceCategory::L2Miss, TraceEventKind::MissDetect,
                1005, 1);
    sink.record(TraceCategory::Power, TraceEventKind::VddChange, 1040,
                std::bit_cast<std::uint64_t>(1.775));
    sink.record(TraceCategory::Clock, TraceEventKind::ClockDivider,
                1040, 2);
    sink.record(TraceCategory::FastForward, TraceEventKind::IdleSpan,
                1050, 100, 50);
    sink.record(TraceCategory::Interval, TraceEventKind::IntervalValue,
                1000, series, std::bit_cast<std::uint64_t>(0.125));

    std::ostringstream os;
    sink.writeChromeJson(os, origin, 1200);

    const minijson::Value doc = minijson::parse(os.str());
    EXPECT_EQ(doc.at("displayTimeUnit").str(), "ns");
    const minijson::Array &events = doc.at("traceEvents").array();
    ASSERT_FALSE(events.empty());

    std::size_t slices = 0;
    std::size_t counters = 0;
    std::size_t instants = 0;
    bool saw_fired = false;
    bool saw_power_series = false;
    for (const minijson::Value &ev : events) {
        ASSERT_TRUE(ev.isObject());
        const std::string &ph = ev.at("ph").str();
        EXPECT_EQ(ev.at("pid").num(), 1.0);
        if (ph == "M")
            continue;
        // Timestamps are origin-relative.
        EXPECT_GE(ev.at("ts").num(), 0.0);
        EXPECT_LE(ev.at("ts").num(), 200.0);
        if (ph == "X") {
            ++slices;
            EXPECT_GE(ev.at("dur").num(), 0.0);
        } else if (ph == "C") {
            ++counters;
            EXPECT_TRUE(ev.at("args").at("value").isNumber());
            if (ev.at("name").str() == "interval.powerW") {
                saw_power_series = true;
                EXPECT_DOUBLE_EQ(ev.at("args").at("value").num(),
                                 0.125);
            }
        } else if (ph == "i") {
            ++instants;
            if (ev.at("name").str() == "down-fsm fired")
                saw_fired = true;
        } else {
            FAIL() << "unexpected ph: " << ph;
        }
    }
    // "high" (closed by the downClockDist entry), "downClockDist"
    // (closed at end_tick), the down-FSM armed window and the idle
    // span.
    EXPECT_EQ(slices, 4u);
    // pipelineVdd, clockDivider, demandOutstanding, interval.powerW.
    EXPECT_EQ(counters, 4u);
    // missDetect plus the down-fsm fired marker.
    EXPECT_EQ(instants, 2u);
    EXPECT_TRUE(saw_fired);
    EXPECT_TRUE(saw_power_series);
}

/** An event stream with no open slices exports cleanly too. */
TEST(TraceSinkTest, ChromeJsonEmptySink)
{
    TraceSink sink;
    std::ostringstream os;
    sink.writeChromeJson(os, 0, 0);
    const minijson::Value doc = minijson::parse(os.str());
    // Only the process/thread-name metadata records.
    for (const minijson::Value &ev : doc.at("traceEvents").array())
        EXPECT_EQ(ev.at("ph").str(), "M");
}

} // namespace
} // namespace vsv
