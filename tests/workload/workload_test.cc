/**
 * @file
 * Tests of the synthetic workload generators and SPEC2K profiles.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/workload.hh"

namespace vsv
{
namespace
{

WorkloadProfile
basicProfile()
{
    WorkloadProfile p;
    p.name = "test";
    p.seed = 5;
    return p;
}

TEST(WorkloadTest, DeterministicForSameSeed)
{
    WorkloadGenerator a(basicProfile());
    WorkloadGenerator b(basicProfile());
    for (int i = 0; i < 5000; ++i) {
        const MicroOp oa = a.next();
        const MicroOp ob = b.next();
        EXPECT_EQ(oa.cls, ob.cls);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.depDist1, ob.depDist1);
        EXPECT_EQ(oa.taken, ob.taken);
    }
}

TEST(WorkloadTest, InstructionMixMatchesProfile)
{
    WorkloadProfile p = basicProfile();
    p.loadFrac = 0.30;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    WorkloadGenerator gen(p);

    std::map<OpClass, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];

    EXPECT_NEAR(counts[OpClass::Load] / double(n), 0.30, 0.01);
    EXPECT_NEAR(counts[OpClass::Store] / double(n), 0.10, 0.01);
    EXPECT_NEAR(counts[OpClass::Branch] / double(n), 0.15, 0.01);
}

TEST(WorkloadTest, FpFractionControlsFpOps)
{
    WorkloadProfile p = basicProfile();
    p.fpFrac = 1.0;
    WorkloadGenerator gen(p);
    for (int i = 0; i < 2000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::IntAlu || op.cls == OpClass::IntMult ||
            op.cls == OpClass::IntDiv) {
            FAIL() << "integer compute op in a pure-FP profile";
        }
    }
}

TEST(WorkloadTest, ColdScanAddressesStrideThroughFootprint)
{
    WorkloadProfile p = basicProfile();
    p.coldFrac = 1.0;
    p.warmFrac = 0.0;
    p.loadFrac = 1.0;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldPattern = ColdPattern::Scan;
    p.coldStride = 64;
    p.swPrefetchCoverage = 0.0;
    WorkloadGenerator gen(p);

    Addr prev = 0;
    for (int i = 0; i < 100; ++i) {
        const MicroOp op = gen.next();
        ASSERT_EQ(op.cls, OpClass::Load);
        if (i > 0)
            EXPECT_EQ(op.addr, prev + 64);
        prev = op.addr;
    }
}

TEST(WorkloadTest, ChainLoadsDependOnPreviousChainLoad)
{
    WorkloadProfile p = basicProfile();
    p.coldFrac = 1.0;
    p.warmFrac = 0.0;
    p.loadFrac = 1.0;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldPattern = ColdPattern::Chain;
    p.coldFootprint = 1 << 20;
    p.chainCount = 1;
    WorkloadGenerator gen(p);

    gen.next();  // first chain load has no producer yet
    for (int i = 0; i < 100; ++i) {
        const MicroOp op = gen.next();
        // Back-to-back chain loads: each depends on the previous one.
        EXPECT_EQ(op.depDist1, 1u);
    }
}

TEST(WorkloadTest, ChainVisitsManyDistinctBlocks)
{
    WorkloadProfile p = basicProfile();
    p.coldFrac = 1.0;
    p.warmFrac = 0.0;
    p.loadFrac = 1.0;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldPattern = ColdPattern::Chain;
    p.coldFootprint = 1 << 20;  // 16K blocks
    WorkloadGenerator gen(p);

    std::set<Addr> blocks;
    for (int i = 0; i < 4000; ++i)
        blocks.insert(gen.next().addr);
    // A random permutation walk should rarely revisit early.
    EXPECT_GT(blocks.size(), 3800u);
}

TEST(WorkloadTest, SoftwarePrefetchesPrecedeTheirLoads)
{
    WorkloadProfile p = basicProfile();
    p.coldFrac = 0.5;
    p.loadFrac = 0.5;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldPattern = ColdPattern::Scan;
    p.swPrefetchCoverage = 1.0;
    p.swPrefetchLookahead = 4;
    WorkloadGenerator gen(p);

    std::map<Addr, std::uint64_t> prefetch_pos;
    int covered = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::Prefetch) {
            prefetch_pos.emplace(op.addr, gen.generated());
        } else if (op.cls == OpClass::Load &&
                   op.addr >= 0x40000000ULL) {
            ++total;
            auto it = prefetch_pos.find(op.addr);
            if (it != prefetch_pos.end() &&
                it->second < gen.generated()) {
                ++covered;
            }
        }
    }
    ASSERT_GT(total, 100);
    // Full coverage modulo the initial lookahead window.
    EXPECT_GT(covered / double(total), 0.95);
}

TEST(WorkloadTest, BranchOutcomesAreConsistentPerSite)
{
    WorkloadProfile p = basicProfile();
    p.branchFrac = 0.5;
    p.branchNoise = 0.0;
    WorkloadGenerator gen(p);

    // Targets must be a deterministic function of the pc.
    std::map<Addr, Addr> site_target;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Branch || op.brKind != BranchKind::Cond)
            continue;
        auto [it, inserted] = site_target.emplace(op.pc, op.target);
        if (!inserted)
            EXPECT_EQ(it->second, op.target);
    }
}

TEST(WorkloadTest, PcStaysInsideCodeFootprint)
{
    WorkloadProfile p = basicProfile();
    p.codeFootprint = 8 * 1024;
    WorkloadGenerator gen(p);
    for (int i = 0; i < 10000; ++i) {
        const MicroOp op = gen.next();
        EXPECT_GE(op.pc, 0x400000u);
        EXPECT_LT(op.pc, 0x400000u + p.codeFootprint);
    }
}

TEST(Spec2kTest, AllBenchmarksHaveProfiles)
{
    EXPECT_EQ(spec2kBenchmarks().size(), 26u);
    for (const auto &name : spec2kBenchmarks()) {
        const WorkloadProfile p = spec2kProfile(name);
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.targetIpc, 0.0) << name;
    }
}

TEST(Spec2kTest, HighMrSubsetMatchesTable2)
{
    // The paper's Figures 5/6 use benchmarks with MR > 4.
    EXPECT_EQ(highMrBenchmarks().size(), 7u);
    for (const auto &name : highMrBenchmarks()) {
        EXPECT_GT(spec2kProfile(name).targetMrBase, 4.0) << name;
    }
    // And the rest are all at or below 4.
    for (const auto &name : spec2kBenchmarks()) {
        bool high = false;
        for (const auto &h : highMrBenchmarks())
            high = high || h == name;
        if (!high)
            EXPECT_LE(spec2kProfile(name).targetMrBase, 4.0) << name;
    }
}

TEST(Spec2kTest, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(spec2kProfile("doom3"), "unknown");
}

TEST(Spec2kTest, ProfilesAreDistinctStreams)
{
    WorkloadGenerator mcf(spec2kProfile("mcf"));
    WorkloadGenerator ammp(spec2kProfile("ammp"));
    int identical = 0;
    for (int i = 0; i < 200; ++i) {
        const MicroOp a = mcf.next();
        const MicroOp b = ammp.next();
        if (a.cls == b.cls && a.addr == b.addr)
            ++identical;
    }
    EXPECT_LT(identical, 100);
}

} // namespace
} // namespace vsv
