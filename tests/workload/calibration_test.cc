/**
 * @file
 * Calibration tests: every SPEC2K profile's measured baseline IPC and
 * L2 miss rate must stay in the neighborhood of its Table 2 target.
 * These are regression fences around the numbers the VSV experiments
 * depend on - loose enough to survive incidental simulator changes,
 * tight enough to catch a broken workload knob.
 *
 * Short windows are used (the profiles are stationary), so tolerances
 * are wide; bench/table2_baseline reports the precise comparison.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/simulator.hh"

namespace vsv
{
namespace
{

class CalibrationTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CalibrationTest, BaselineIpcAndMrNearTable2)
{
    const std::string bench = GetParam();
    SimulationOptions options = makeOptions(bench, false, 120000, 200000);
    Simulator sim(options);
    const SimulationResult result = sim.run();
    const WorkloadProfile &profile = options.profile;

    // IPC within 40% of Table 2.
    EXPECT_GT(result.ipc, 0.60 * profile.targetIpc) << bench;
    EXPECT_LT(result.ipc, 1.40 * profile.targetIpc) << bench;

    // MR within a factor of ~1.6 for miss-heavy benchmarks, or simply
    // small for the near-zero ones.
    if (profile.targetMrBase >= 1.0) {
        EXPECT_GT(result.mr, profile.targetMrBase / 1.6) << bench;
        EXPECT_LT(result.mr, profile.targetMrBase * 1.6) << bench;
    } else {
        EXPECT_LT(result.mr, profile.targetMrBase + 0.7) << bench;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CalibrationTest,
    ::testing::ValuesIn(spec2kBenchmarks()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(CalibrationShapeTest, MrOrderingMatchesTable2)
{
    // The seven high-MR benchmarks must measure above every low-MR
    // benchmark - Figure 4's sort order depends on it.
    double min_high = 1e9;
    for (const auto &name : highMrBenchmarks()) {
        SimulationOptions options = makeOptions(name, false, 80000,
                                                150000);
        Simulator sim(options);
        min_high = std::min(min_high, sim.run().mr);
    }
    for (const auto &name : {"gzip", "crafty", "mesa", "twolf"}) {
        SimulationOptions options = makeOptions(name, false, 80000,
                                                150000);
        Simulator sim(options);
        EXPECT_LT(sim.run().mr, min_high) << name;
    }
}

TEST(CalibrationShapeTest, IlpSplitDrivesIssueRateAfterMisses)
{
    // mcf (pointer chase) must stall after misses; applu (solver
    // sweeps) must keep issuing - this is the very signal the
    // down-FSM discriminates on.
    auto zero_issue_fraction = [](const std::string &bench) {
        SimulationOptions options = makeOptions(bench, false, 80000,
                                                150000);
        Simulator sim(options);
        sim.run();
        const double zero =
            sim.stats().scalarValue("cpu.zeroIssueCycles");
        // Fraction of pipeline cycles issuing nothing.
        const double cycles = static_cast<double>(
            sim.core().pipelineCycles());
        return zero / cycles;
    };
    const double mcf_stall = zero_issue_fraction("mcf");
    const double applu_stall = zero_issue_fraction("applu");
    EXPECT_GT(mcf_stall, 0.55);
    EXPECT_LT(applu_stall, mcf_stall - 0.2);
}

} // namespace
} // namespace vsv
