/**
 * @file
 * Property tests of the workload generator's memory-stream patterns
 * and calibration knobs (bursts, jitter, consumers, region layout).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "workload/workload.hh"

namespace vsv
{
namespace
{

WorkloadProfile
coldOnly(ColdPattern pattern)
{
    WorkloadProfile p;
    p.name = "pattern";
    p.seed = 21;
    p.loadFrac = 0.5;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldFrac = 1.0;
    p.warmFrac = 0.0;
    p.coldPattern = pattern;
    p.coldFootprint = 1 << 20;
    p.swPrefetchCoverage = 0.0;
    return p;
}

TEST(PatternTest, SeqChainIsSequentialAndSerial)
{
    WorkloadGenerator gen(coldOnly(ColdPattern::SeqChain));
    Addr prev = 0;
    std::uint64_t prev_pos = 0;
    int checked = 0;
    for (int i = 0; i < 5000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Load)
            continue;
        if (prev != 0) {
            EXPECT_EQ(op.addr, prev + 64);
            // Serial: depends on the previous chain load exactly.
            EXPECT_EQ(op.depDist1, gen.generated() - prev_pos);
            ++checked;
        }
        prev = op.addr;
        prev_pos = gen.generated();
    }
    EXPECT_GT(checked, 2000);
}

TEST(PatternTest, ScanWrapsWithinFootprint)
{
    WorkloadProfile p = coldOnly(ColdPattern::Scan);
    p.coldFootprint = 64 * 1024;  // wraps after 1K accesses
    WorkloadGenerator gen(p);
    std::set<Addr> addrs;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::Load) {
            EXPECT_GE(op.addr, WorkloadRegions::cold);
            EXPECT_LT(op.addr, WorkloadRegions::cold + p.coldFootprint);
            addrs.insert(op.addr);
        }
    }
    EXPECT_EQ(addrs.size(), 1024u);  // every 64B step, revisited
}

TEST(PatternTest, JitterSkipsBlocksButStaysInBounds)
{
    WorkloadProfile p = coldOnly(ColdPattern::Scan);
    p.scanJitterProb = 0.5;
    WorkloadGenerator gen(p);
    Addr prev = 0;
    int jumps = 0, steps = 0;
    for (int i = 0; i < 8000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Load)
            continue;
        if (prev != 0 && op.addr > prev) {
            if (op.addr != prev + 64)
                ++jumps;
            ++steps;
            EXPECT_EQ((op.addr - prev) % 64, 0u);
            EXPECT_LE(op.addr - prev, 64u * 3);  // jumps skip 1-2 blocks
        }
        prev = op.addr;
    }
    EXPECT_GT(jumps, steps / 4);
    EXPECT_LT(jumps, 3 * steps / 4);
}

TEST(PatternTest, MultiStreamScansUseDisjointSlices)
{
    WorkloadProfile p = coldOnly(ColdPattern::Scan);
    p.scanStreams = 4;
    WorkloadGenerator gen(p);
    const std::uint64_t slice = p.coldFootprint / 4;
    std::set<int> slices_touched;
    for (int i = 0; i < 8000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls == OpClass::Load) {
            slices_touched.insert(static_cast<int>(
                (op.addr - WorkloadRegions::cold) / slice));
        }
    }
    EXPECT_EQ(slices_touched.size(), 4u);
}

TEST(PatternTest, ColdBurstsClusterAccesses)
{
    WorkloadProfile p;
    p.name = "bursty";
    p.seed = 22;
    p.loadFrac = 0.5;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldFrac = 0.1;
    p.coldBurst = 8;
    p.coldPattern = ColdPattern::Scan;
    WorkloadGenerator gen(p);

    // Measure run lengths of consecutive cold loads.
    std::vector<int> runs;
    int run = 0;
    int cold = 0, loads = 0;
    for (int i = 0; i < 100000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Load)
            continue;
        ++loads;
        const bool is_cold = op.addr >= WorkloadRegions::cold;
        cold += is_cold;
        if (is_cold) {
            ++run;
        } else if (run > 0) {
            runs.push_back(run);
            run = 0;
        }
    }
    // Average rate is preserved...
    EXPECT_NEAR(static_cast<double>(cold) / loads, 0.1, 0.02);
    // ...but arrivals are clustered into bursts of ~8 loads. (Cold
    // bursts force consecutive *loads* cold; interleaved non-load ops
    // do not break a burst.)
    double mean_run = 0.0;
    for (const int r : runs)
        mean_run += r;
    mean_run /= static_cast<double>(runs.size());
    EXPECT_GT(mean_run, 5.0);
}

TEST(PatternTest, ColdConsumersChainToLatestColdLoad)
{
    WorkloadProfile p;
    p.name = "consumer";
    p.seed = 23;
    p.loadFrac = 0.2;
    p.storeFrac = p.branchFrac = 0.0;
    p.coldFrac = 0.5;
    p.coldPattern = ColdPattern::Scan;
    p.coldConsumerProb = 1.0;
    p.loadConsumerProb = 0.0;
    WorkloadGenerator gen(p);

    std::uint64_t last_cold_pos = 0;
    int checked = 0;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        const std::uint64_t pos = gen.generated();
        if (op.cls == OpClass::Load) {
            if (op.addr >= WorkloadRegions::cold)
                last_cold_pos = pos;
        } else if (last_cold_pos != 0) {
            EXPECT_EQ(op.depDist1, pos - last_cold_pos);
            ++checked;
        }
    }
    EXPECT_GT(checked, 5000);
}

TEST(PatternTest, RegularSideStreamLivesAboveThePrimaryFootprint)
{
    WorkloadProfile p = coldOnly(ColdPattern::Random);
    p.coldRegularFrac = 0.5;
    p.regularFootprint = 1 << 20;
    WorkloadGenerator gen(p);
    int regular = 0, primary = 0;
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Load)
            continue;
        if (op.addr >= WorkloadRegions::cold + p.coldFootprint)
            ++regular;
        else
            ++primary;
    }
    EXPECT_GT(regular, 3000);
    EXPECT_GT(primary, 3000);
    // The regular stream is sequential within its own region.
}

TEST(PatternTest, MutatingChainDivergesFromFixedChain)
{
    WorkloadProfile fixed = coldOnly(ColdPattern::Chain);
    WorkloadProfile mut = coldOnly(ColdPattern::MutatingChain);
    mut.chainMutateProb = 0.5;

    WorkloadGenerator a(fixed), b(fixed), c(mut);
    // Two fixed chains with the same seed are identical...
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a.next().addr, b.next().addr);
    // ...and mutation uses extra RNG draws, so the mutating walk
    // diverges from the fixed one.
    WorkloadGenerator d(fixed);
    int same = 0;
    for (int i = 0; i < 2000; ++i) {
        if (d.next().addr == c.next().addr)
            ++same;
    }
    EXPECT_LT(same, 1500);
}

TEST(PatternTest, HotAndWarmStayInTheirRegions)
{
    WorkloadProfile p;
    p.name = "regions";
    p.seed = 24;
    p.loadFrac = 0.5;
    p.warmFrac = 0.4;
    p.coldFrac = 0.0;
    WorkloadGenerator gen(p);
    for (int i = 0; i < 20000; ++i) {
        const MicroOp op = gen.next();
        if (op.cls != OpClass::Load)
            continue;
        if (op.addr >= WorkloadRegions::warm &&
            op.addr < WorkloadRegions::cold) {
            EXPECT_LT(op.addr, WorkloadRegions::warm + p.warmFootprint);
        } else {
            ASSERT_GE(op.addr, WorkloadRegions::hot);
            EXPECT_LT(op.addr, WorkloadRegions::hot + p.hotFootprint);
        }
    }
}

TEST(PatternTest, BranchSlotsAreStableAcrossLoopIterations)
{
    WorkloadProfile p;
    p.name = "slots";
    p.seed = 25;
    p.branchFrac = 0.15;
    p.codeFootprint = 4 * 1024;  // 1K instruction slots
    WorkloadGenerator gen(p);

    // Record which pcs carry branches on the first pass; later passes
    // must agree exactly (static code).
    std::map<Addr, bool> is_branch_slot;
    const std::uint64_t loop = p.codeFootprint / 4;
    for (std::uint64_t i = 0; i < loop; ++i) {
        const MicroOp op = gen.next();
        is_branch_slot[op.pc] = op.cls == OpClass::Branch;
    }
    for (std::uint64_t i = 0; i < 4 * loop; ++i) {
        const MicroOp op = gen.next();
        EXPECT_EQ(op.cls == OpClass::Branch, is_branch_slot[op.pc])
            << "pc " << std::hex << op.pc;
    }
}

} // namespace
} // namespace vsv
