/**
 * @file
 * Tests of trace recording and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "stats/stats.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace vsv
{
namespace
{

/** Temp-file helper that cleans up after itself. */
class TempTrace
{
  public:
    TempTrace()
    {
        char name[] = "/tmp/vsv_trace_XXXXXX";
        const int fd = mkstemp(name);
        EXPECT_GE(fd, 0);
        ::close(fd);
        path_ = name;
    }
    ~TempTrace() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

MicroOp
sampleOp(int i)
{
    MicroOp op;
    op.cls = i % 2 == 0 ? OpClass::Load : OpClass::FpMult;
    op.depDist1 = static_cast<std::uint32_t>(i);
    op.depDist2 = static_cast<std::uint32_t>(2 * i);
    op.pc = 0x400000 + i * 4;
    op.addr = 0x10000000ULL + i * 64;
    op.target = 0x500000 + i;
    op.taken = i % 3 == 0;
    op.brKind = BranchKind::NotBranch;
    return op;
}

TEST(TraceTest, RoundTripPreservesEveryField)
{
    TempTrace tmp;
    {
        TraceWriter writer(tmp.path());
        for (int i = 0; i < 100; ++i)
            writer.append(sampleOp(i));
    }

    TraceReader reader(tmp.path(), /*loop=*/false);
    EXPECT_EQ(reader.records(), 100u);
    for (int i = 0; i < 100; ++i) {
        const MicroOp expect = sampleOp(i);
        const MicroOp got = reader.next();
        EXPECT_EQ(got.cls, expect.cls);
        EXPECT_EQ(got.depDist1, expect.depDist1);
        EXPECT_EQ(got.depDist2, expect.depDist2);
        EXPECT_EQ(got.pc, expect.pc);
        EXPECT_EQ(got.addr, expect.addr);
        EXPECT_EQ(got.target, expect.target);
        EXPECT_EQ(got.taken, expect.taken);
        EXPECT_EQ(got.brKind, expect.brKind);
    }
}

TEST(TraceTest, LoopingWrapsToTheStart)
{
    TempTrace tmp;
    {
        TraceWriter writer(tmp.path());
        for (int i = 0; i < 10; ++i)
            writer.append(sampleOp(i));
    }
    TraceReader reader(tmp.path(), /*loop=*/true);
    for (int i = 0; i < 35; ++i) {
        const MicroOp got = reader.next();
        EXPECT_EQ(got.pc, sampleOp(i % 10).pc) << i;
    }
    EXPECT_EQ(reader.replayed(), 35u);
}

TEST(TraceTest, WrapCountIsTrackedAndExported)
{
    TempTrace tmp;
    {
        TraceWriter writer(tmp.path());
        for (int i = 0; i < 10; ++i)
            writer.append(sampleOp(i));
    }
    TraceReader reader(tmp.path(), /*loop=*/true);
    StatRegistry registry;
    reader.regStats(registry, "trace");

    for (int i = 0; i < 35; ++i)
        reader.next();
    // 35 reads over a 10-record trace rewind three times.
    EXPECT_EQ(reader.wraps(), 3u);
    EXPECT_DOUBLE_EQ(registry.scalarValue("trace.wraps"), 3.0);

    TraceReader once(tmp.path(), /*loop=*/false);
    for (int i = 0; i < 10; ++i)
        once.next();
    EXPECT_EQ(once.wraps(), 0u);
}

TEST(TraceTest, NonLoopingExhaustionIsFatal)
{
    TempTrace tmp;
    {
        TraceWriter writer(tmp.path());
        writer.append(sampleOp(0));
    }
    TraceReader reader(tmp.path(), /*loop=*/false);
    reader.next();
    EXPECT_EXIT(reader.next(), ::testing::ExitedWithCode(1),
                "exhausted");
}

TEST(TraceTest, RejectsGarbageFiles)
{
    TempTrace tmp;
    {
        std::FILE *f = std::fopen(tmp.path().c_str(), "wb");
        std::fputs("this is not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(tmp.path()),
                ::testing::ExitedWithCode(1), "not a VSV trace");
}

TEST(TraceTest, RejectsMissingFile)
{
    EXPECT_EXIT(TraceReader reader("/nonexistent/trace.vsvt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceTest, GeneratorCaptureReplaysIdentically)
{
    // Capture 5000 ops of a real profile, then compare replay against
    // a fresh generator: identical streams.
    TempTrace tmp;
    {
        WorkloadGenerator gen(spec2kProfile("mcf"));
        TraceWriter writer(tmp.path());
        for (int i = 0; i < 5000; ++i)
            writer.append(gen.next());
    }

    WorkloadGenerator fresh(spec2kProfile("mcf"));
    TraceReader replay(tmp.path(), false);
    for (int i = 0; i < 5000; ++i) {
        const MicroOp a = fresh.next();
        const MicroOp b = replay.next();
        ASSERT_EQ(a.cls, b.cls) << i;
        ASSERT_EQ(a.addr, b.addr) << i;
        ASSERT_EQ(a.depDist1, b.depDist1) << i;
    }
}

} // namespace
} // namespace vsv
