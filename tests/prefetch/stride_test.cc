/**
 * @file
 * Tests of the stream/stride prefetcher.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "power/model.hh"
#include "prefetch/stride.hh"

namespace vsv
{
namespace
{

class RecordingIssuer : public PrefetchIssuer
{
  public:
    void
    issueHardwarePrefetch(Addr addr, Tick) override
    {
        issued.push_back(addr);
    }
    std::vector<Addr> issued;
};

CacheConfig
l1dGeom()
{
    return {"l1d", 64 * 1024, 2, 32, 2};
}

class StrideTest : public ::testing::Test
{
  protected:
    StrideTest()
        : power(), pf(StridePrefetcherConfig{}, l1dGeom(), power)
    {
        pf.setIssuer(&issuer);
    }

    void
    miss(Addr addr, Tick t = 0)
    {
        pf.notifyL1DAccess(addr, false, t);
    }

    PowerModel power;
    StridePrefetcher pf;
    RecordingIssuer issuer;
};

TEST_F(StrideTest, ConfirmedStreamPrefetchesAhead)
{
    miss(0x1000);
    miss(0x1040);  // stride 64 learned
    EXPECT_TRUE(issuer.issued.empty());

    miss(0x1080);  // stride confirmed: prefetch degree blocks ahead
    ASSERT_EQ(issuer.issued.size(), 4u);
    EXPECT_EQ(issuer.issued[0], 0x1080u + 64);
    EXPECT_EQ(issuer.issued[3], 0x1080u + 4 * 64);

    miss(0x10c0);  // each further stream hit prefetches again
    ASSERT_EQ(issuer.issued.size(), 8u);
    EXPECT_EQ(issuer.issued[4], 0x10c0u + 64);
}

TEST_F(StrideTest, NegativeStridesWork)
{
    miss(0x8000);
    miss(0x8000 - 64);
    miss(0x8000 - 128);  // confirmed: fires backward
    ASSERT_FALSE(issuer.issued.empty());
    EXPECT_EQ(issuer.issued[0], 0x8000u - 192);
}

TEST_F(StrideTest, LargeStridesAreNotStreams)
{
    miss(0x1000);
    miss(0x1000 + (1 << 20));
    miss(0x1000 + (2 << 20));
    miss(0x1000 + (3 << 20));
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(StrideTest, HitsDoNotTrain)
{
    for (int i = 0; i < 10; ++i)
        pf.notifyL1DAccess(0x1000 + i * 64, /*hit=*/true, i);
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(StrideTest, RandomMissesNeverConfirm)
{
    // Strides keep changing: the stream can re-train but never sees
    // the same stride twice in a row.
    Addr a = 0x10000;
    const int deltas[] = {64, 192, 448, 128, 320, 64, 256, 384};
    for (const int d : deltas) {
        miss(a);
        a += d;
    }
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(StrideTest, MultipleConcurrentStreams)
{
    // Two interleaved streams with different strides both confirm.
    for (int i = 0; i < 6; ++i) {
        miss(0x100000 + i * 64);
        miss(0x900000 + i * 128);
    }
    EXPECT_GE(issuer.issued.size(), 8u);
    // Prefetches from both streams appear.
    const bool stream_a =
        std::any_of(issuer.issued.begin(), issuer.issued.end(),
                    [](Addr addr) { return addr < 0x200000; });
    const bool stream_b =
        std::any_of(issuer.issued.begin(), issuer.issued.end(),
                    [](Addr addr) { return addr >= 0x900000; });
    EXPECT_TRUE(stream_a);
    EXPECT_TRUE(stream_b);
}

TEST_F(StrideTest, TableEvictsLruStream)
{
    StridePrefetcherConfig config;
    config.streams = 2;
    StridePrefetcher small(config, l1dGeom(), power);
    RecordingIssuer small_issuer;
    small.setIssuer(&small_issuer);

    // Fill both entries, then a third allocation evicts the older.
    small.notifyL1DAccess(0x100000, false, 1);
    small.notifyL1DAccess(0x900000, false, 2);
    small.notifyL1DAccess(0xf00000, false, 3);
    // The 0x100000 stream is gone: continuing it re-allocates instead
    // of confirming, so no prefetch fires after two more steps.
    small.notifyL1DAccess(0x100040, false, 4);
    small.notifyL1DAccess(0x100080, false, 5);
    small.notifyL1DAccess(0x1000c0, false, 6);
    // (re-learned by now: next miss confirms and fires)
    small.notifyL1DAccess(0x100100, false, 7);
    EXPECT_FALSE(small_issuer.issued.empty());
}

TEST_F(StrideTest, NoBufferSemantics)
{
    EXPECT_FALSE(pf.probeBuffer(0x1000, 0));
    pf.fillBuffer(0x1000, 0);  // no-op
    EXPECT_FALSE(pf.probeBuffer(0x1000, 0));
}

TEST_F(StrideTest, StatsCount)
{
    miss(0x1000);
    miss(0x1040);
    miss(0x1080);
    miss(0x10c0);
    StatRegistry registry;
    pf.regStats(registry, "stride");
    EXPECT_GE(registry.scalarValue("stride.streamsAllocated"), 1.0);
    EXPECT_GE(registry.scalarValue("stride.streamsConfirmed"), 1.0);
    EXPECT_DOUBLE_EQ(registry.scalarValue("stride.issued"), 8.0);
}

} // namespace
} // namespace vsv
