/**
 * @file
 * Tests of the Time-Keeping prefetch engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "power/model.hh"
#include "prefetch/timekeeping.hh"

namespace vsv
{
namespace
{

/** Captures issued prefetch addresses. */
class RecordingIssuer : public PrefetchIssuer
{
  public:
    void
    issueHardwarePrefetch(Addr addr, Tick) override
    {
        issued.push_back(addr);
    }

    std::vector<Addr> issued;
};

CacheConfig
l1dGeom()
{
    return {"l1d", 64 * 1024, 2, 32, 2};
}

class TimekeepingTest : public ::testing::Test
{
  protected:
    TimekeepingTest()
        : power(), tk(TimekeepingConfig{}, l1dGeom(), power)
    {
        tk.setIssuer(&issuer);
    }

    /**
     * Train the (a -> b) successor correlation `times` times (the
     * delta predictor needs confidence 2 before it fires).
     */
    void
    train(Addr a, Addr b, int times, Tick &t)
    {
        for (int i = 0; i < times; ++i) {
            tk.notifyL1DFill(a, invalidAddr, t);
            tk.notifyL1DAccess(a, true, t + 10);
            tk.notifyL1DFill(b, a, t + 20);  // b displaces a: train a->b
            t += 100;
        }
    }

    PowerModel power;
    TimekeepingPrefetcher tk;
    RecordingIssuer issuer;
};

TEST_F(TimekeepingTest, BufferFillProbeConsume)
{
    tk.fillBuffer(0x1000, 0);
    EXPECT_TRUE(tk.probeBuffer(0x1008, 1));   // same 32B block
    // The hit consumed the entry.
    EXPECT_FALSE(tk.probeBuffer(0x1000, 2));
}

TEST_F(TimekeepingTest, BufferMissOnAbsentBlock)
{
    EXPECT_FALSE(tk.probeBuffer(0x2000, 0));
}

TEST_F(TimekeepingTest, BufferFifoReplacement)
{
    TimekeepingConfig config;
    config.bufferEntries = 4;
    TimekeepingPrefetcher small(config, l1dGeom(), power);
    for (Addr i = 0; i < 5; ++i)
        small.fillBuffer(0x1000 + i * 32, i);
    // The oldest entry was replaced.
    EXPECT_FALSE(small.probeBuffer(0x1000, 10));
    EXPECT_TRUE(small.probeBuffer(0x1000 + 4 * 32, 10));
}

TEST_F(TimekeepingTest, LearnsEvictionSuccessorAndPrefetchesOnDeath)
{
    // Two blocks mapping to the same L1 set: set stride for the 64KB
    // 2-way 32B cache is 32KB.
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;

    // Train the A -> B correlation to confidence 2.
    Tick t = 0;
    train(a, b, 2, t);

    // A is resident again and goes idle.
    tk.notifyL1DFill(a, invalidAddr, 1000);
    tk.notifyL1DAccess(a, true, 1100);

    // Let A's idle time grow far past its live time (~100) and run
    // decay sweeps until the dead prediction fires.
    for (Tick tt = 1100; tt < 40000; tt += 16)
        tk.tick(tt);

    ASSERT_FALSE(issuer.issued.empty());
    EXPECT_EQ(issuer.issued.front(), b);
}

TEST_F(TimekeepingTest, SingleObservationIsNotConfidentEnough)
{
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    Tick t = 0;
    train(a, b, 1, t);  // confidence 1 < threshold 2

    tk.notifyL1DFill(a, invalidAddr, 1000);
    tk.notifyL1DAccess(a, true, 1100);
    for (Tick tt = 1100; tt < 40000; tt += 16)
        tk.tick(tt);
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(TimekeepingTest, ConflictingDeltasSuppressPrefetching)
{
    // The same signature sees alternating successors: confidence can
    // never reach the firing threshold.
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    const Addr c = a + 3 * 32 * 1024;
    Tick t = 0;
    for (int i = 0; i < 4; ++i) {
        train(a, b, 1, t);
        train(a, c, 1, t);
    }

    tk.notifyL1DFill(a, invalidAddr, t);
    tk.notifyL1DAccess(a, true, t + 10);
    for (Tick tt = t + 10; tt < t + 40000; tt += 16)
        tk.tick(tt);
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(TimekeepingTest, DeltaGeneralizesAcrossAliasedSets)
{
    // Blocks in *different* sets share the predictor entry when their
    // nine tag bits match; a constant stride keeps the delta valid for
    // all of them (the scan-friendly property).
    const Addr set_stride = 32 * 1024;
    const Addr a1 = 0x100000;        // set 0 parity 0
    const Addr a2 = 0x100000 + 64;   // a different (even) set, same tag
    Tick t = 0;
    train(a1, a1 + set_stride, 2, t);

    // a2 was never trained directly, but shares tag bits and parity.
    tk.notifyL1DFill(a2, invalidAddr, t);
    tk.notifyL1DAccess(a2, true, t + 10);
    for (Tick tt = t + 10; tt < t + 40000; tt += 16)
        tk.tick(tt);

    // a1's still-resident frame may fire as well; what matters is
    // that the delta generalized to a2's set.
    ASSERT_FALSE(issuer.issued.empty());
    EXPECT_NE(std::find(issuer.issued.begin(), issuer.issued.end(),
                        a2 + set_stride),
              issuer.issued.end());
}

TEST_F(TimekeepingTest, NoPrefetchWithoutLearnedSuccessor)
{
    const Addr a = 0x30000;
    tk.notifyL1DFill(a, invalidAddr, 0);
    tk.notifyL1DAccess(a, true, 50);
    for (Tick t = 50; t < 40000; t += 16)
        tk.tick(t);
    EXPECT_TRUE(issuer.issued.empty());
    EXPECT_EQ(tk.prefetchesIssued(), 0u);
}

TEST_F(TimekeepingTest, LiveBlockIsNotPredictedDead)
{
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    Tick t0 = 0;
    train(a, b, 2, t0);
    tk.notifyL1DFill(a, invalidAddr, t0);

    // Keep touching A so idle never exceeds 2x live.
    for (Tick t = t0; t < t0 + 20000; t += 8) {
        tk.notifyL1DAccess(a, true, t);
        tk.tick(t);
    }
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(TimekeepingTest, DeadPredictionFiresOnlyOncePerGeneration)
{
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    Tick t0 = 0;
    train(a, b, 2, t0);
    tk.notifyL1DFill(a, invalidAddr, t0);
    tk.notifyL1DAccess(a, true, t0 + 50);

    for (Tick t = t0 + 50; t < t0 + 100000; t += 16)
        tk.tick(t);
    EXPECT_EQ(issuer.issued.size(), 1u);
}

TEST_F(TimekeepingTest, BufferedBlockIsNotRePrefetched)
{
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    Tick t0 = 0;
    train(a, b, 2, t0);
    tk.notifyL1DFill(a, invalidAddr, t0);
    tk.notifyL1DAccess(a, true, t0 + 50);

    tk.fillBuffer(b, t0 + 60);  // already buffered
    for (Tick t = t0 + 60; t < t0 + 40000; t += 16)
        tk.tick(t);
    EXPECT_TRUE(issuer.issued.empty());
}

TEST_F(TimekeepingTest, AccessResetsDeadHandling)
{
    const Addr a = 0x10000;
    const Addr b = a + 32 * 1024;
    Tick t0 = 0;
    train(a, b, 2, t0);

    tk.notifyL1DFill(a, invalidAddr, t0);
    tk.notifyL1DAccess(a, true, t0 + 50);
    for (Tick t = t0 + 50; t < t0 + 40000; t += 16)
        tk.tick(t);
    ASSERT_EQ(issuer.issued.size(), 1u);

    // A new access revives the block; a second idle period triggers
    // a second prediction.
    tk.notifyL1DAccess(a, true, t0 + 40000);
    for (Tick t = t0 + 40000; t < t0 + 200000; t += 16)
        tk.tick(t);
    EXPECT_EQ(issuer.issued.size(), 2u);
}

} // namespace
} // namespace vsv
