/**
 * @file
 * Tests of the hybrid branch predictor, BTB and RAS.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace vsv
{
namespace
{

MicroOp
condBranch(Addr pc, bool taken, Addr target = 0x500000)
{
    MicroOp op;
    op.cls = OpClass::Branch;
    op.brKind = BranchKind::Cond;
    op.pc = pc;
    op.taken = taken;
    op.target = target;
    return op;
}

TEST(BranchPredictorTest, LearnsAlwaysTakenBranch)
{
    BranchPredictor bp;
    const MicroOp op = condBranch(0x1000, true);

    // Train.
    for (int i = 0; i < 10; ++i) {
        const BranchPrediction pred = bp.predict(op);
        bp.resolve(op, pred);
    }
    // After warmup the branch should predict correctly.
    const BranchPrediction pred = bp.predict(op);
    EXPECT_TRUE(pred.predTaken);
    EXPECT_TRUE(pred.btbHit);
    EXPECT_EQ(pred.predTarget, op.target);
    EXPECT_FALSE(bp.resolve(op, pred));
}

TEST(BranchPredictorTest, LearnsAlwaysNotTakenBranch)
{
    BranchPredictor bp;
    const MicroOp op = condBranch(0x2000, false);
    for (int i = 0; i < 10; ++i) {
        const BranchPrediction pred = bp.predict(op);
        bp.resolve(op, pred);
    }
    const BranchPrediction pred = bp.predict(op);
    EXPECT_FALSE(pred.predTaken);
    EXPECT_FALSE(bp.resolve(op, pred));
}

TEST(BranchPredictorTest, LearnsAlternatingPatternViaGshare)
{
    BranchPredictor bp;
    // A strict alternation is history-predictable but bimodal-hostile.
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        const MicroOp op = condBranch(0x3000, i % 2 == 0);
        const BranchPrediction pred = bp.predict(op);
        if (bp.resolve(op, pred) && i >= 200)
            ++wrong;
    }
    // The second half should be essentially perfect.
    EXPECT_LE(wrong, 4);
}

TEST(BranchPredictorTest, BtbColdMissIsTargetMispredict)
{
    BranchPredictor bp;
    MicroOp op = condBranch(0x4000, true);
    // Force a taken prediction by pre-training direction only would
    // still insert the BTB; instead check the very first resolve on a
    // taken branch whose prediction was taken (cold counters start
    // weakly not-taken at 1, so first prediction is not-taken; that
    // is a direction miss). Either way: cold => mispredict.
    const BranchPrediction pred = bp.predict(op);
    EXPECT_TRUE(bp.resolve(op, pred));
    EXPECT_TRUE(BranchPredictor::wouldMispredict(op, pred));
}

TEST(BranchPredictorTest, WouldMispredictMatchesResolve)
{
    BranchPredictor bp;
    for (int i = 0; i < 500; ++i) {
        const Addr pc = 0x1000 + (i % 17) * 4;
        const bool taken = (i * 7 % 13) < 6;
        const MicroOp op = condBranch(pc, taken, 0x600000 + pc);
        const BranchPrediction pred = bp.predict(op);
        const bool would = BranchPredictor::wouldMispredict(op, pred);
        const bool did = bp.resolve(op, pred);
        EXPECT_EQ(would, did) << "iteration " << i;
    }
}

TEST(BranchPredictorTest, RasPredictsReturnTargets)
{
    BranchPredictor bp;

    MicroOp call;
    call.cls = OpClass::Branch;
    call.brKind = BranchKind::Call;
    call.pc = 0x7000;
    call.taken = true;
    call.target = 0x9000;

    MicroOp ret;
    ret.cls = OpClass::Branch;
    ret.brKind = BranchKind::Return;
    ret.pc = 0x9100;
    ret.taken = true;
    ret.target = call.pc + 4;  // return to the call's fall-through

    const BranchPrediction call_pred = bp.predict(call);
    bp.resolve(call, call_pred);

    const BranchPrediction ret_pred = bp.predict(ret);
    EXPECT_EQ(ret_pred.predTarget, call.pc + 4);
    EXPECT_FALSE(BranchPredictor::wouldMispredict(ret, ret_pred));
}

TEST(BranchPredictorTest, RasDepthWrapsWithoutCrashing)
{
    BranchPredictorConfig config;
    config.rasEntries = 4;
    BranchPredictor bp(config);

    MicroOp call;
    call.cls = OpClass::Branch;
    call.brKind = BranchKind::Call;
    call.taken = true;
    for (int i = 0; i < 10; ++i) {
        call.pc = 0x7000 + i * 16;
        call.target = 0x9000;
        bp.resolve(call, bp.predict(call));
    }
    // Only the innermost 4 returns can match.
    MicroOp ret;
    ret.cls = OpClass::Branch;
    ret.brKind = BranchKind::Return;
    ret.taken = true;
    for (int i = 9; i >= 6; --i) {
        ret.pc = 0xa000;
        ret.target = 0x7000 + i * 16 + 4;
        const BranchPrediction pred = bp.predict(ret);
        EXPECT_EQ(pred.predTarget, ret.target) << i;
    }
}

TEST(BranchPredictorTest, StatsCount)
{
    BranchPredictor bp;
    const MicroOp op = condBranch(0x100, true);
    for (int i = 0; i < 5; ++i)
        bp.resolve(op, bp.predict(op));
    EXPECT_EQ(bp.lookups(), 5u);
    EXPECT_GT(bp.mispredicts(), 0u);   // cold start misses
    EXPECT_LT(bp.mispredicts(), 5u);   // but it learns
}

TEST(BranchPredictorTest, UnpredictableBranchMispredictsOften)
{
    BranchPredictor bp;
    int wrong = 0;
    std::uint64_t lcg = 12345;
    for (int i = 0; i < 2000; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const MicroOp op = condBranch(0x8000, (lcg >> 33) & 1);
        if (bp.resolve(op, bp.predict(op)))
            ++wrong;
    }
    // Random outcomes: mispredict rate should be near 50%.
    EXPECT_GT(wrong, 700);
    EXPECT_LT(wrong, 1300);
}

} // namespace
} // namespace vsv
