/**
 * @file
 * vsvcampaign: the distributed-sweep driver (CAMPAIGNS.md). Runs the
 * paper's characterization grid - per benchmark: baseline, VSV
 * without FSMs, VSV with the paper's FSMs (the Figure 4 grid) -
 * sharded across campaign workers, and writes the merged --json
 * manifest. The same binary is both sides of the wire: give it
 * --campaign-workers/--campaign-listen to coordinate, or
 * --campaign-connect to serve an existing coordinator.
 *
 * Usage:
 *   # all-local campaign, 4 forked workers:
 *   vsvcampaign --campaign-workers=4 --json=campaign.json
 *
 *   # coordinator awaiting remote workers:
 *   vsvcampaign --campaign-listen=0.0.0.0:7077 --json=campaign.json
 *
 *   # a worker (same flags as the coordinator, plus the address):
 *   vsvcampaign --campaign-connect=host:7077
 *
 * Coordinator and workers must be started with the same grid flags
 * (--benchmarks/--instructions/--warmup/--seed): each side rebuilds
 * the grid from its own command line, and the HELLO handshake rejects
 * any worker whose grid fingerprint differs. Run without campaign
 * flags, this is an ordinary in-process sweep of the same grid.
 *
 * Common options (all --key=value):
 *   --benchmarks=a,b,c      grid benchmarks (default: all of SPEC2K)
 *   --instructions=N --warmup=N --seed=S
 *   --jobs=N                threads per worker process
 *   --retries=N             per-run retry budget (also bounds how
 *                           often a run is re-queued after a worker
 *                           death)
 *   --resume=FILE           carry completed runs forward (coordinator)
 *   --json=path             merged sweep manifest (coordinator)
 *   --campaign-chunk=N --campaign-heartbeat=SECONDS
 */

#include <iostream>

#include "campaign/campaign.hh"
#include "harness/experiment.hh"

using namespace vsv;

int
main(int argc, char **argv)
{
    const ExperimentArgs args = parseExperimentArgs(
        argc, argv, 400000, 300000, spec2kBenchmarks());

    // The Figure 4 characterization grid: three runs per benchmark,
    // all sharing the benchmark's workload seed.
    std::vector<SweepJob> jobs;
    for (const auto &name : args.benchmarks) {
        SimulationOptions base = makeOptions(args, name);
        applyRunSeed(base, args.seed);
        jobs.push_back({name + "/base", base});

        SimulationOptions no_fsm = base;
        no_fsm.vsv = noFsmVsvConfig();
        jobs.push_back({name + "/no-fsm", no_fsm});

        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/fsm", with_fsm});
    }

    // Worker role exits inside this call; only the coordinator (or a
    // plain in-process run) reaches the summary below.
    const std::vector<SweepOutcome> outcomes =
        campaign::runCampaignSweep(args, "vsvcampaign", jobs);
    const std::size_t failures = reportSweepFailures(outcomes);

    std::size_t completed = 0;
    for (const SweepOutcome &outcome : outcomes)
        completed += outcome.ok();
    std::cout << "campaign complete: " << completed << "/"
              << outcomes.size() << " runs ok";
    if (!args.jsonPath.empty())
        std::cout << ", manifest in " << args.jsonPath;
    std::cout << '\n';
    return failures == 0 ? 0 : 1;
}
