/**
 * @file
 * Threshold explorer: sweeps the down-FSM and up-FSM thresholds for
 * one benchmark and prints the power/performance trade-off surface -
 * the experiment a user would run to pick FSM parameters for their
 * own workload (the paper's Sections 6.2 and 6.3 condensed into one
 * tool).
 *
 *   ./threshold_explorer [benchmark] [--instructions=N] [--jobs=N]
 *                        [--json=path] [--seed=S]
 */

#include <iostream>

#include "campaign/campaign.hh"
#include "harness/experiment.hh"

using namespace vsv;

int
main(int argc, char **argv)
{
    const ExperimentArgs args = parseExperimentArgs(argc, argv,
                                                    200000, 0);
    const std::string bench =
        args.positional.empty() ? "lucas" : args.positional[0];

    const std::uint32_t downs[] = {0, 1, 3, 5};
    const std::uint32_t ups[] = {1, 3, 5};

    // The baseline plus the full down x up threshold grid.
    SimulationOptions base = makeOptions(args, bench);
    applyRunSeed(base, args.seed);
    std::vector<SweepJob> jobs;
    jobs.push_back({bench + "/base", base});
    for (const std::uint32_t down : downs) {
        for (const std::uint32_t up : ups) {
            SimulationOptions opts = base;
            opts.vsv = fsmVsvConfig();
            opts.vsv.down = {down, 10};
            opts.vsv.up = {up, 10};
            jobs.push_back({bench + "/down" + std::to_string(down) +
                                "-up" + std::to_string(up),
                            opts});
        }
    }

    const std::vector<SweepOutcome> outcomes =
        campaign::runCampaignSweep(args, "threshold_explorer", jobs);

    if (reportSweepFailures(outcomes) != 0)
        return 1;
    const SimulationResult &base_result = outcomes[0].result;

    std::cout << "Threshold exploration for '" << bench << "' (baseline "
              << "IPC " << TextTable::num(base_result.ipc) << ", MR "
              << TextTable::num(base_result.mr, 1) << ")\n";
    std::cout << "cells: performance degradation % / power savings %\n\n";

    TextTable table({"down\\up", "1", "3", "5"});
    std::size_t next = 1;
    for (const std::uint32_t down : downs) {
        std::vector<std::string> cells{std::to_string(down)};
        for (std::size_t u = 0; u < std::size(ups); ++u) {
            const VsvComparison cmp = makeComparison(
                base_result, outcomes[next++].result);
            cells.push_back(TextTable::num(cmp.perfDegradationPct, 1) +
                            "/" + TextTable::num(cmp.powerSavingsPct, 1));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "\nLower-left favors power; upper-right favors "
                 "performance. The paper picks down 3 / up 3.\n";
    return 0;
}
