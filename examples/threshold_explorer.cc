/**
 * @file
 * Threshold explorer: sweeps the down-FSM and up-FSM thresholds for
 * one benchmark and prints the power/performance trade-off surface -
 * the experiment a user would run to pick FSM parameters for their
 * own workload (the paper's Sections 6.2 and 6.3 condensed into one
 * tool).
 *
 *   ./threshold_explorer [benchmark] [--instructions=N]
 */

#include <iostream>

#include "common/config.hh"
#include "harness/experiment.hh"

using namespace vsv;

int
main(int argc, char **argv)
{
    Config config;
    const auto positional = config.parseArgs(argc, argv);
    const std::string bench = positional.empty() ? "lucas" : positional[0];
    const std::uint64_t insts = config.getUInt("instructions", 200000);

    const SimulationOptions base = makeOptions(bench, false, insts);
    Simulator base_sim(base);
    const SimulationResult base_result = base_sim.run();

    std::cout << "Threshold exploration for '" << bench << "' (baseline "
              << "IPC " << TextTable::num(base_result.ipc) << ", MR "
              << TextTable::num(base_result.mr, 1) << ")\n";
    std::cout << "cells: performance degradation % / power savings %\n\n";

    TextTable table({"down\\up", "1", "3", "5"});
    for (const std::uint32_t down : {0u, 1u, 3u, 5u}) {
        std::vector<std::string> cells{std::to_string(down)};
        for (const std::uint32_t up : {1u, 3u, 5u}) {
            VsvConfig vsv = fsmVsvConfig();
            vsv.down = {down, 10};
            vsv.up = {up, 10};
            SimulationOptions opts = base;
            opts.vsv = vsv;
            Simulator sim(opts);
            const VsvComparison cmp =
                makeComparison(base_result, sim.run());
            cells.push_back(TextTable::num(cmp.perfDegradationPct, 1) +
                            "/" + TextTable::num(cmp.powerSavingsPct, 1));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "\nLower-left favors power; upper-right favors "
                 "performance. The paper picks down 3 / up 3.\n";
    return 0;
}
