/**
 * @file
 * Trace tool: capture a synthetic benchmark's micro-op stream to a
 * binary trace file, inspect a trace's summary, or run the simulator
 * directly from a trace - the bring-your-own-workload path.
 *
 * Usage:
 *   trace_tool record <benchmark> <file> [--ops=N]
 *   trace_tool info <file>
 *   trace_tool run <file> [--instructions=N] [--vsv] [--warmup=N]
 *                  [--trace-out=FILE] [--trace-categories=...]
 *                  [--interval-stats=N]
 */

#include <iostream>
#include <map>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "workload/trace.hh"

using namespace vsv;

namespace
{

int
record(const std::string &bench, const std::string &path,
       std::uint64_t ops)
{
    WorkloadGenerator gen(spec2kProfile(bench));
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < ops; ++i)
        writer.append(gen.next());
    writer.close();
    std::cout << "wrote " << ops << " ops from '" << bench << "' to "
              << path << '\n';
    return 0;
}

int
info(const std::string &path)
{
    TraceReader reader(path, /*loop=*/false);
    std::cout << path << ": " << reader.records() << " records\n";

    std::map<OpClass, std::uint64_t> mix;
    std::uint64_t branches_taken = 0;
    const std::uint64_t sample =
        std::min<std::uint64_t>(reader.records(), 1000000);
    for (std::uint64_t i = 0; i < sample; ++i) {
        const MicroOp op = reader.next();
        ++mix[op.cls];
        if (op.cls == OpClass::Branch && op.taken)
            ++branches_taken;
    }
    std::cout << "mix over the first " << sample << " ops:\n";
    for (const auto &[cls, count] : mix) {
        std::cout << "  " << opClassName(cls) << ": "
                  << TextTable::num(100.0 * count / sample, 1) << "%\n";
    }
    if (mix.count(OpClass::Branch)) {
        std::cout << "  (branches taken: "
                  << TextTable::num(100.0 * branches_taken /
                                        mix[OpClass::Branch],
                                    1)
                  << "%)\n";
    }
    return 0;
}

int
run(const std::string &path, const Config &config)
{
    // Replay against a generic profile (the trace provides the ops;
    // the profile only sets the pre-warm footprints).
    SimulationOptions options;
    options.profile = spec2kProfile("gzip");
    options.profile.name = "trace:" + path;
    options.tracePath = path;
    options.measureInstructions = config.getUInt("instructions", 200000);
    options.warmupInstructions = config.getUInt("warmup", 100000);
    options.vsv = fsmVsvConfig();
    options.vsv.enabled = config.getBool("vsv", false);
    options.trace.path = config.getString("trace-out", "");
    options.trace.categories = TraceSink::parseCategories(
        config.getString("trace-categories", ""));
    options.trace.intervalTicks = config.getUInt("interval-stats", 0);
    config.rejectUnknown("trace_tool run");

    Simulator sim(options);
    const SimulationResult r = sim.run();
    std::cout << r.benchmark << ": IPC " << TextTable::num(r.ipc)
              << ", MR " << TextTable::num(r.mr, 2) << ", avg power "
              << TextTable::num(r.avgPowerW) << " W";
    if (options.vsv.enabled) {
        std::cout << ", " << r.downTransitions << " VSV transitions, "
                  << TextTable::num(100.0 * r.lowModeFraction, 1)
                  << "% low";
    }
    std::cout << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    const auto positional = config.parseArgs(argc, argv);
    if (positional.size() < 2) {
        std::cerr << "usage: trace_tool record <bench> <file> [--ops=N]\n"
                     "       trace_tool info <file>\n"
                     "       trace_tool run <file> [--vsv] "
                     "[--instructions=N]\n";
        return 1;
    }

    const std::string &verb = positional[0];
    if (verb == "record" && positional.size() == 3) {
        const std::uint64_t ops = config.getUInt("ops", 500000);
        config.rejectUnknown("trace_tool record");
        return record(positional[1], positional[2], ops);
    }
    if (verb == "info") {
        config.rejectUnknown("trace_tool info");
        return info(positional[1]);
    }
    if (verb == "run") {
        return run(positional[1], config);
    }
    std::cerr << "unknown or malformed command\n";
    return 1;
}
