/**
 * @file
 * vsvstored: the result-store daemon (STORE.md). Serves configuration-
 * fingerprint queries from a content-addressed result store over TCP:
 * a hit answers with the cached run's bytes instantly, a miss
 * simulates the run on the spot, caches it, and answers with the
 * fresh bytes. The wire framing is the campaign protocol's (4-byte
 * big-endian length prefix around one JSON object), with a
 * query/reply message pair documented in STORE.md.
 *
 * The daemon is started with the same grid flags a sweep would use
 * (it builds the Figure 4 characterization grid - per benchmark:
 * baseline, VSV without FSMs, VSV with the paper's FSMs) and will
 * only simulate fingerprints that appear in that grid; anything else
 * is answered with an error.
 *
 * Usage:
 *   # serve the default grid out of ./results on port 7099:
 *   vsvstored --store-dir=results --store-listen=7099
 *
 *   # ephemeral port (logged at startup), narrower grid:
 *   vsvstored --store-dir=results --store-listen=127.0.0.1:0 \
 *             --benchmarks=mcf,art --instructions=400000
 *
 * SIGINT/SIGTERM stop the daemon cleanly after the in-flight query.
 *
 * Common options (all --key=value):
 *   --store-dir=DIR         store root (required)
 *   --store-listen=[HOST:]PORT  bind address (default 0.0.0.0)
 *   --benchmarks=a,b,c --instructions=N --warmup=N --seed=S
 */

#include <csignal>
#include <iostream>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "store/daemon.hh"

using namespace vsv;

namespace
{

store::ResultDaemon *activeDaemon = nullptr;

void
handleStopSignal(int)
{
    if (activeDaemon)
        activeDaemon->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    const ExperimentArgs args = parseExperimentArgs(
        argc, argv, 400000, 300000, spec2kBenchmarks());
    const std::string listenSpec =
        args.config.getString("store-listen", "");
    args.config.rejectUnknown("vsvstored");
    if (args.storeDir.empty())
        fatal("vsvstored needs --store-dir=DIR (see STORE.md)");
    if (args.noStore)
        fatal("--no-store contradicts running a store daemon");
    if (listenSpec.empty())
        fatal("vsvstored needs --store-listen=[HOST:]PORT");

    // The same grid a sweep of these flags would run (vsvcampaign's
    // Figure 4 grid), so sweep and daemon agree on what every
    // fingerprint means.
    std::vector<SweepJob> jobs;
    for (const auto &name : args.benchmarks) {
        SimulationOptions base = makeOptions(args, name);
        applyRunSeed(base, args.seed);
        jobs.push_back({name + "/base", base});

        SimulationOptions no_fsm = base;
        no_fsm.vsv = noFsmVsvConfig();
        jobs.push_back({name + "/no-fsm", no_fsm});

        SimulationOptions with_fsm = base;
        with_fsm.vsv = fsmVsvConfig();
        jobs.push_back({name + "/fsm", with_fsm});
    }

    store::ResultStore resultStore(args.storeDir);
    WarmupSnapshotCache cache(args.snapshotDir);
    store::ResultDaemon daemon(resultStore,
                               prepareSweepJobs(args, jobs), listenSpec,
                               args.snapshotCache ? &cache : nullptr);

    activeDaemon = &daemon;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    const std::uint64_t answered = daemon.serve();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    activeDaemon = nullptr;

    resultStore.flush();
    const store::ResultStoreStats stats = resultStore.stats();
    std::cout << "vsvstored stopped: " << answered << " queries ("
              << stats.hits << " hits, " << stats.misses << " misses, "
              << stats.inserts << " inserts)\n";
    return 0;
}
