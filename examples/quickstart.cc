/**
 * @file
 * Quickstart: run one benchmark on the baseline processor and on the
 * VSV processor, and print what VSV did.
 *
 *   ./quickstart [benchmark] [--instructions=N] [--trace-out=FILE]
 *
 * Benchmarks are SPEC2K names (mcf, ammp, swim, ...); default: ammp.
 * With --trace-out the two runs write Chrome trace-event JSON to
 * FILE.base.json / FILE.vsv.json (see OBSERVABILITY.md).
 */

#include <iostream>

#include "common/config.hh"
#include "harness/experiment.hh"

using namespace vsv;

int
main(int argc, char **argv)
{
    Config config;
    const auto positional = config.parseArgs(argc, argv);
    const std::string bench = positional.empty() ? "ammp" : positional[0];
    const std::uint64_t insts = config.getUInt("instructions", 300000);
    const std::string trace_out = config.getString("trace-out", "");
    const std::uint32_t trace_cats = TraceSink::parseCategories(
        config.getString("trace-categories", ""));
    const std::uint64_t interval = config.getUInt("interval-stats", 0);
    config.rejectUnknown("quickstart");

    std::cout << "VSV quickstart: benchmark '" << bench << "', "
              << insts << " instructions\n\n";

    // 1. Baseline: VSV disabled, everything at VDDH / full clock.
    SimulationOptions options = makeOptions(bench, false, insts);
    if (!trace_out.empty()) {
        options.trace.path = traceOutPathForRun(trace_out, "base");
        options.trace.categories = trace_cats;
        options.trace.intervalTicks = interval;
    }
    Simulator baseline(options);
    const SimulationResult base = baseline.run();

    std::cout << "baseline:  IPC " << TextTable::num(base.ipc)
              << ", MR " << TextTable::num(base.mr, 1)
              << " misses/kinst, avg power "
              << TextTable::num(base.avgPowerW, 2) << " W\n";

    // 2. VSV with the paper's FSM configuration (down 3/10, up 3/10).
    options.vsv = fsmVsvConfig();
    if (!trace_out.empty())
        options.trace.path = traceOutPathForRun(trace_out, "vsv");
    Simulator vsv_sim(options);
    const SimulationResult vsv = vsv_sim.run();

    std::cout << "with VSV:  IPC " << TextTable::num(vsv.ipc)
              << ", avg power " << TextTable::num(vsv.avgPowerW, 2)
              << " W, " << vsv.downTransitions
              << " down / " << vsv.upTransitions << " up transitions, "
              << TextTable::num(100.0 * vsv.lowModeFraction, 1)
              << "% of time at low voltage\n\n";

    const VsvComparison cmp = makeComparison(base, vsv);
    std::cout << "=> power savings "
              << TextTable::num(cmp.powerSavingsPct, 1)
              << "%, performance degradation "
              << TextTable::num(cmp.perfDegradationPct, 1) << "%\n";
    return 0;
}
