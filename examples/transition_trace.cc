/**
 * @file
 * Transition trace: drives a VSV controller directly with a scripted
 * L2-miss scenario, records everything through a TraceSink, and
 * renders the recorded event stream as a textual timeline - the
 * paper's Figure 2 (high-to-low) and Figure 3 (low-to-high)
 * transitions, reconstructed from the same events the full simulator
 * exports to Perfetto (see OBSERVABILITY.md).
 *
 *   ./transition_trace [--trace-out=FILE]
 *
 * With --trace-out the scenario's Chrome trace-event JSON is written
 * to FILE, loadable in Perfetto / chrome://tracing.
 *
 * The scenario is self-checking: it must produce exactly one down and
 * one up transition, visible both in the controller's counters and in
 * the recorded mode-transition events; any mismatch exits nonzero.
 */

#include <bit>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "power/model.hh"
#include "trace/sink.hh"
#include "vsv/controller.hh"

using namespace vsv;

namespace
{

/** MonitorOutcome rendering (numeric protocol; see trace/sink.cc). */
constexpr const char *outcomeNames[] = {"idle", "watching", "fired",
                                        "expired"};

void
drive(VsvController &ctrl, Tick &now, int count, std::uint32_t issued)
{
    for (int i = 0; i < count; ++i) {
        if (ctrl.beginTick(now))
            ctrl.observeIssueRate(issued);
        ++now;
    }
}

/** Render one recorded event as a timeline line. */
void
render(const TraceSink &sink, const TraceEvent &ev)
{
    std::cout << std::setw(5) << ev.ts << "  ";
    switch (static_cast<TraceEventKind>(ev.kind)) {
      case TraceEventKind::ModeEnter:
        std::cout << "mode -> "
                  << sink.internedString(
                         static_cast<std::uint32_t>(ev.a));
        break;
      case TraceEventKind::FsmArm:
        std::cout << (ev.a == traceFsmDown ? "down" : "up")
                  << "-FSM armed";
        break;
      case TraceEventKind::FsmObserve: {
        const std::uint64_t outcome = ev.b & 0xff;
        std::cout << (ev.a == traceFsmDown ? "down" : "up")
                  << "-FSM observed issue=" << (ev.b >> 8) << " ("
                  << outcomeNames[outcome & 3] << ")";
        break;
      }
      case TraceEventKind::FsmDisarm:
        std::cout << (ev.a == traceFsmDown ? "down" : "up")
                  << "-FSM disarmed";
        break;
      case TraceEventKind::VddChange:
        std::cout << "VDD " << std::fixed << std::setprecision(3)
                  << std::bit_cast<double>(ev.a) << " V";
        break;
      case TraceEventKind::RampEnergy:
        std::cout << "ramp energy "
                  << std::bit_cast<double>(ev.a) / 1000.0
                  << " nJ cumulative";
        break;
      case TraceEventKind::ClockDivider:
        std::cout << "clock divider -> " << ev.a;
        break;
      default:
        std::cout << "event kind " << ev.kind;
        break;
    }
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    const std::string trace_out = config.getString("trace-out", "");
    config.rejectUnknown("transition_trace");

    VsvConfig vsv_config;
    vsv_config.enabled = true;
    vsv_config.down = {3, 10};
    vsv_config.up = {3, 10};

    PowerModel power;
    VsvController ctrl(vsv_config, power);

    TraceSink sink;
    power.setTraceSink(&sink);
    ctrl.setTraceSink(&sink);

    // The scripted scenario: steady high-power execution, a demand L2
    // miss that collapses the issue rate (Figure 2: down-FSM fires,
    // clock distribution, VDD ramp), a stretch at VDDL, then the miss
    // returns (Figure 3: Section 4.4's single-miss rule raises the
    // voltage immediately).
    Tick now = 0;
    drive(ctrl, now, 3, 6);
    ctrl.demandL2MissDetected(now, 1);
    drive(ctrl, now, 4, 0);   // down-FSM counts 3 zero-issue cycles
    drive(ctrl, now, 17, 0);  // clock distribution + 12-tick ramp
    drive(ctrl, now, 6, 0);   // low-power mode, half clock
    ctrl.demandL2MissReturned(now, 0);
    drive(ctrl, now, 16, 4);  // control dist + ramp back to VDDH
    drive(ctrl, now, 3, 6);

    std::cout << "tick   event (from the recorded trace)\n"
              << "---------------------------------------\n";
    sink.visit([&](const TraceEvent &ev) { render(sink, ev); });

    std::cout << "\ntransitions: " << ctrl.downTransitions()
              << " down, " << ctrl.upTransitions()
              << " up; ramp energy " << power.rampEnergyPj() / 1000.0
              << " nJ; " << sink.eventCount() << " events recorded\n";

    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::cerr << "cannot open " << trace_out << '\n';
            return 1;
        }
        sink.writeChromeJson(os, 0, now);
        std::cout << "wrote " << trace_out << '\n';
    }

    // Self-check: the scenario is one round trip, and the recorded
    // mode events must agree with the controller's counters.
    std::uint64_t down_events = 0;
    std::uint64_t up_events = 0;
    sink.visit([&](const TraceEvent &ev) {
        if (static_cast<TraceEventKind>(ev.kind) !=
            TraceEventKind::ModeEnter) {
            return;
        }
        const std::string &name =
            sink.internedString(static_cast<std::uint32_t>(ev.a));
        if (name == "downClockDist")
            ++down_events;
        else if (name == "upClockDist")
            ++up_events;
    });
    if (ctrl.downTransitions() != 1 || ctrl.upTransitions() != 1 ||
        down_events != 1 || up_events != 1) {
        std::cerr << "FAIL: expected exactly one down and one up "
                     "transition (counters "
                  << ctrl.downTransitions() << "/"
                  << ctrl.upTransitions() << ", traced " << down_events
                  << "/" << up_events << ")\n";
        return 1;
    }
    return 0;
}
