/**
 * @file
 * Transition trace: drives a VSV controller directly with a scripted
 * L2-miss scenario and prints a tick-by-tick trace of the mode, the
 * pipeline voltage and the clock edges - a textual rendering of the
 * paper's Figure 2 (high-to-low) and Figure 3 (low-to-high)
 * timelines.
 */

#include <iomanip>
#include <iostream>

#include "power/model.hh"
#include "vsv/controller.hh"

using namespace vsv;

namespace
{

void
traceTicks(VsvController &ctrl, PowerModel &power, Tick &now, int count,
           std::uint32_t issued)
{
    for (int i = 0; i < count; ++i) {
        const bool edge = ctrl.beginTick(now);
        if (edge)
            ctrl.observeIssueRate(issued);
        std::cout << std::setw(5) << now << "  "
                  << std::setw(14) << vsvStateName(ctrl.state()) << "  "
                  << std::fixed << std::setprecision(3)
                  << power.pipelineVdd() << " V  "
                  << (edge ? "edge" : "    ")
                  << (edge ? ("  issue=" + std::to_string(issued)) : "")
                  << '\n';
        ++now;
    }
}

} // namespace

int
main()
{
    VsvConfig config;
    config.enabled = true;
    config.down = {3, 10};
    config.up = {3, 10};

    PowerModel power;
    VsvController ctrl(config, power);
    Tick now = 0;

    std::cout << "tick   state           VDD     clock\n";
    std::cout << "-------------------------------------\n";

    std::cout << "\n-- steady high-power mode --\n";
    traceTicks(ctrl, power, now, 3, 6);

    std::cout << "\n-- demand L2 miss detected; issue rate collapses --\n";
    ctrl.demandL2MissDetected(now, 1);
    traceTicks(ctrl, power, now, 4, 0);  // down-FSM counts 3 zero cycles

    std::cout << "\n-- Figure 2: clock distribution, then VDD ramp --\n";
    traceTicks(ctrl, power, now, 17, 0);

    std::cout << "\n-- low-power mode (half clock) --\n";
    traceTicks(ctrl, power, now, 6, 0);

    std::cout << "\n-- the miss returns (last outstanding) --\n";
    ctrl.demandL2MissReturned(now, 0);

    std::cout << "\n-- Figure 3: control distribution, VDD ramp, "
                 "full speed --\n";
    traceTicks(ctrl, power, now, 16, 4);

    std::cout << "\n-- back in the high-power mode --\n";
    traceTicks(ctrl, power, now, 3, 6);

    std::cout << "\ntransitions: " << ctrl.downTransitions() << " down, "
              << ctrl.upTransitions() << " up; ramp energy "
              << power.rampEnergyPj() / 1000.0 << " nJ\n";
    return 0;
}
