/**
 * @file
 * vsvsim: the full-featured command-line driver. Runs one or more
 * benchmarks under an arbitrary processor/VSV configuration and
 * prints either a summary, the complete statistics dump, or CSV rows
 * - the tool a downstream user scripts their own sweeps with.
 *
 * Usage:
 *   vsvsim <benchmark> [benchmark...] [options]
 *
 * Common options (all --key=value):
 *   --instructions=N        measured window (default 400000)
 *   --warmup=N              functional warmup (default: profile's)
 *   --vsv                   enable VSV (default: baseline)
 *   --down-threshold=N      down-FSM threshold (0 = no down-FSM)
 *   --down-period=N         down-FSM monitoring period
 *   --up-policy=fsm|firstr|lastr
 *   --up-threshold=N --up-period=N
 *   --clock-divider=N       pipeline clock divider at VDDL (default 2)
 *   --timekeeping           enable the Time-Keeping prefetcher
 *   --cores=N               cores sharing the L2/bus/DRAM (default 1)
 *   --rail-policy=per-core|shared   rail topology when --cores > 1
 *   --core-benchmarks=a,b   per-core multiprogrammed mix (N entries)
 *   --dcg=on|off            deterministic clock gating
 *   --vddl=V --slew=V_per_ns --ramp-energy-nj=N
 *   --leakage-fraction=F    model a leakier node (default 0)
 *   --ruu=N --lsq=N --issue-width=N --dcache-ports=N
 *   --l2-kb=N --l2-latency=N --mem-latency=N
 *   --jobs=N                worker threads when given several benchmarks
 *   --json=path             write the sweep JSON document (manifest +
 *                           per-run stats)
 *   --seed=S                sweep seed mixed into each profile seed
 *   --stats                 dump the full statistics registry
 *   --csv                   print one machine-readable CSV row per run
 *   --list                  list available benchmarks and exit
 */

#include <iostream>

#include "campaign/campaign.hh"
#include "harness/experiment.hh"

using namespace vsv;

namespace
{

void
printCsv(const SimulationResult &r, bool header)
{
    if (header) {
        std::cout << "benchmark,instructions,ticks,ipc,mr,avgPowerW,"
                     "energyPj,downTransitions,upTransitions,"
                     "lowModeFraction\n";
    }
    std::cout << r.benchmark << ',' << r.instructions << ',' << r.ticks
              << ',' << r.ipc << ',' << r.mr << ',' << r.avgPowerW
              << ',' << r.energyPj << ',' << r.downTransitions << ','
              << r.upTransitions << ',' << r.lowModeFraction << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentArgs args = parseExperimentArgs(argc, argv, 400000, 0);
    Config &config = args.config;

    if (config.getBool("list", false)) {
        for (const auto &name : spec2kBenchmarks())
            std::cout << name << '\n';
        return 0;
    }
    if (args.positional.empty()) {
        std::cerr << "usage: vsvsim <benchmark> [benchmark...] "
                     "[--options]; see --list for benchmarks\n";
        return 1;
    }

    // One job per positional benchmark, all under the same
    // configuration.
    std::vector<SweepJob> jobs;
    for (const std::string &bench : args.positional) {
        SimulationOptions options = makeOptions(
            args, bench, config.getBool("timekeeping", false));
        applyRunSeed(options, args.seed);

        // VSV policy.
        options.vsv.enabled = config.getBool("vsv", false);
        options.vsv.down.threshold = static_cast<std::uint32_t>(
            config.getUInt("down-threshold", 3));
        options.vsv.down.period = static_cast<std::uint32_t>(
            config.getUInt("down-period", 10));
        options.vsv.up.threshold = static_cast<std::uint32_t>(
            config.getUInt("up-threshold", 3));
        options.vsv.up.period = static_cast<std::uint32_t>(
            config.getUInt("up-period", 10));
        options.vsv.clockDivider = static_cast<std::uint32_t>(
            config.getUInt("clock-divider", options.vsv.clockDivider));
        const std::string up_policy =
            config.getString("up-policy", "fsm");
        if (up_policy == "fsm")
            options.vsv.upPolicy = UpPolicy::Fsm;
        else if (up_policy == "firstr")
            options.vsv.upPolicy = UpPolicy::FirstR;
        else if (up_policy == "lastr")
            options.vsv.upPolicy = UpPolicy::LastR;
        else
            fatal("unknown --up-policy: " + up_policy);

        // Circuit constants.
        options.vsv.vddLow =
            config.getDouble("vddl", options.vsv.vddLow);
        options.power.vddLow = options.vsv.vddLow;
        options.vsv.slewVoltsPerTick =
            config.getDouble("slew", options.vsv.slewVoltsPerTick);
        options.power.rampEnergyPj =
            1000.0 *
            config.getDouble("ramp-energy-nj",
                             options.power.rampEnergyPj / 1000.0);
        options.power.gating = config.getString("dcg", "on") != "off"
                                   ? GatingStyle::Dcg
                                   : GatingStyle::Simple;
        options.power.leakageFraction =
            config.getDouble("leakage-fraction", 0.0);

        // Core / memory geometry.
        options.core.ruuSize = static_cast<std::uint32_t>(
            config.getUInt("ruu", options.core.ruuSize));
        options.core.lsqSize = static_cast<std::uint32_t>(
            config.getUInt("lsq", options.core.lsqSize));
        options.core.issueWidth = static_cast<std::uint32_t>(
            config.getUInt("issue-width", options.core.issueWidth));
        options.core.dcachePorts = static_cast<std::uint32_t>(
            config.getUInt("dcache-ports", options.core.dcachePorts));
        options.hierarchy.l2.sizeBytes =
            config.getUInt("l2-kb",
                           options.hierarchy.l2.sizeBytes / 1024) *
            1024;
        options.hierarchy.l2.hitLatency = static_cast<std::uint32_t>(
            config.getUInt("l2-latency",
                           options.hierarchy.l2.hitLatency));
        options.hierarchy.dram.latency = static_cast<std::uint32_t>(
            config.getUInt("mem-latency",
                           options.hierarchy.dram.latency));

        jobs.push_back({bench, options});
    }

    const bool want_stats = config.getBool("stats", false);
    const bool want_csv = config.getBool("csv", false);
    const bool csv_header = config.getBool("csv-header", false);

    const std::vector<SweepOutcome> outcomes =
        campaign::runCampaignSweep(args, "vsvsim", jobs);
    const std::size_t failures = reportSweepFailures(outcomes);

    bool first = true;
    for (const SweepOutcome &outcome : outcomes) {
        if (!outcome.ok())
            continue;
        const SimulationResult &result = outcome.result;
        if (want_csv) {
            printCsv(result, csv_header && first);
        } else {
            std::cout << result.benchmark << ": " << result.instructions
                      << " insts in " << result.ticks << " ticks\n"
                      << "  IPC " << TextTable::num(result.ipc)
                      << ", MR " << TextTable::num(result.mr, 2)
                      << " misses/kinst\n"
                      << "  avg power "
                      << TextTable::num(result.avgPowerW) << " W ("
                      << TextTable::num(result.energyPj / 1e6, 3)
                      << " uJ total)\n"
                      << "  VSV: " << result.downTransitions
                      << " down / " << result.upTransitions
                      << " up transitions, "
                      << TextTable::num(
                             100.0 * result.lowModeFraction, 1)
                      << "% of wall time in the low-power path\n";
            for (std::size_t c = 0; c < result.perCore.size(); ++c) {
                const CoreRunResult &pc = result.perCore[c];
                std::cout << "  core" << c << " (" << pc.benchmark
                          << "): IPC " << TextTable::num(pc.ipc)
                          << ", " << pc.downTransitions << " down / "
                          << pc.upTransitions << " up, "
                          << TextTable::num(
                                 100.0 * pc.lowModeFraction, 1)
                          << "% low\n";
            }
        }
        if (want_stats) {
            std::cout << '\n' << outcome.statsText;
            if (outcomes.size() > 1)
                std::cout << '\n';
        }
        first = false;
    }
    return failures == 0 ? 0 : 1;
}
